#include "telemetry/report.h"

#include <fstream>
#include <stdexcept>

namespace ihtl::telemetry {

namespace {

JsonValue hw_to_json(const HwStats& h) {
  JsonValue entry = JsonValue::object();
  entry.set("cycles", h.sum.cycles);
  entry.set("instructions", h.sum.instructions);
  entry.set("ipc", h.sum.ipc());
  entry.set("llc_loads", h.sum.llc_loads);
  entry.set("llc_misses", h.sum.llc_misses);
  entry.set("l1d_misses", h.sum.l1d_misses);
  entry.set("dtlb_misses", h.sum.dtlb_misses);
  entry.set("samples", h.samples);
  return entry;
}

}  // namespace

JsonValue metrics_to_json(const MetricsRegistry& reg) {
  JsonValue out = JsonValue::object();
  const std::map<std::string, HwStats> hw = reg.hw();

  JsonValue spans = JsonValue::object();
  for (const auto& [path, s] : reg.spans()) {
    JsonValue entry = JsonValue::object();
    entry.set("count", s.count);
    entry.set("total_s", s.total_s);
    entry.set("avg_s", s.avg_s());
    entry.set("min_s", s.min_s);
    entry.set("max_s", s.max_s);
    // Additive key (schema contract): HW-counter deltas attributed to this
    // span path, when hardware profiling recorded any.
    if (const auto it = hw.find(path); it != hw.end()) {
      entry.set("hw", hw_to_json(it->second));
    }
    spans.set(path, std::move(entry));
  }
  out.set("spans", std::move(spans));

  JsonValue counters = JsonValue::object();
  for (const auto& [name, v] : reg.counters()) counters.set(name, v);
  out.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::object();
  for (const auto& [name, v] : reg.gauges()) gauges.set(name, v);
  out.set("gauges", std::move(gauges));

  // Additive section: explicit availability plus every HW path (including
  // ones with no matching span, e.g. per-block push attributions).
  const auto status = reg.hw_status();
  if (status || !hw.empty()) {
    JsonValue section = JsonValue::object();
    const bool available = status ? status->first : !hw.empty();
    section.set("available", available);
    if (status && !status->first && !status->second.empty()) {
      section.set("reason", status->second);
    }
    JsonValue paths = JsonValue::object();
    for (const auto& [path, h] : hw) paths.set(path, hw_to_json(h));
    section.set("paths", std::move(paths));
    out.set("hw_counters", std::move(section));
  }

  return out;
}

JsonValue make_report(const MetricsRegistry& reg, JsonValue run,
                      JsonValue graph, JsonValue config) {
  JsonValue out = JsonValue::object();
  out.set("run", std::move(run));
  out.set("graph", std::move(graph));
  out.set("config", std::move(config));
  JsonValue snapshot = metrics_to_json(reg);
  for (const auto& [key, value] : snapshot.entries()) {
    out.set(key, value);
  }
  return out;
}

void write_json_file(const JsonValue& doc, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open for write: " + path);
  }
  out << doc.dump();
  if (!out) {
    throw std::runtime_error("write failed: " + path);
  }
}

}  // namespace ihtl::telemetry
