#include "telemetry/report.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ihtl::telemetry {

namespace {

JsonValue hw_to_json(const HwStats& h) {
  JsonValue entry = JsonValue::object();
  entry.set("cycles", h.sum.cycles);
  entry.set("instructions", h.sum.instructions);
  entry.set("ipc", h.sum.ipc());
  entry.set("llc_loads", h.sum.llc_loads);
  entry.set("llc_misses", h.sum.llc_misses);
  entry.set("l1d_misses", h.sum.l1d_misses);
  entry.set("dtlb_misses", h.sum.dtlb_misses);
  entry.set("samples", h.samples);
  return entry;
}

}  // namespace

JsonValue metrics_to_json(const MetricsRegistry& reg) {
  JsonValue out = JsonValue::object();
  const std::map<std::string, HwStats> hw = reg.hw();

  JsonValue spans = JsonValue::object();
  for (const auto& [path, s] : reg.spans()) {
    JsonValue entry = JsonValue::object();
    entry.set("count", s.count);
    entry.set("total_s", s.total_s);
    entry.set("avg_s", s.avg_s());
    entry.set("min_s", s.min_s);
    entry.set("max_s", s.max_s);
    // Additive key (schema contract): HW-counter deltas attributed to this
    // span path, when hardware profiling recorded any.
    if (const auto it = hw.find(path); it != hw.end()) {
      entry.set("hw", hw_to_json(it->second));
    }
    spans.set(path, std::move(entry));
  }
  out.set("spans", std::move(spans));

  JsonValue counters = JsonValue::object();
  for (const auto& [name, v] : reg.counters()) counters.set(name, v);
  out.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::object();
  for (const auto& [name, v] : reg.gauges()) gauges.set(name, v);
  out.set("gauges", std::move(gauges));

  // Additive section: explicit availability plus every HW path (including
  // ones with no matching span, e.g. per-block push attributions).
  const auto status = reg.hw_status();
  if (status || !hw.empty()) {
    JsonValue section = JsonValue::object();
    const bool available = status ? status->first : !hw.empty();
    section.set("available", available);
    if (status && !status->first && !status->second.empty()) {
      section.set("reason", status->second);
    }
    JsonValue paths = JsonValue::object();
    for (const auto& [path, h] : hw) paths.set(path, hw_to_json(h));
    section.set("paths", std::move(paths));
    out.set("hw_counters", std::move(section));
  }

  return out;
}

JsonValue make_report(const MetricsRegistry& reg, JsonValue run,
                      JsonValue graph, JsonValue config) {
  JsonValue out = JsonValue::object();
  out.set("run", std::move(run));
  out.set("graph", std::move(graph));
  out.set("config", std::move(config));
  JsonValue snapshot = metrics_to_json(reg);
  for (const auto& [key, value] : snapshot.entries()) {
    out.set(key, value);
  }
  return out;
}

void write_json_file(const JsonValue& doc, const std::string& path) {
  // Write-to-temp + rename, so a reader polling `path` (bench_diff in CI,
  // a dashboard tailing a server's periodic metrics dump) never observes a
  // truncated — i.e. invalid-JSON — document, even when the same path is
  // rewritten every few seconds. rename(2) is atomic within a filesystem;
  // a rename failure (e.g. cross-device temp dirs never happen here since
  // the temp lives beside the target) falls back to the direct write.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      // Path itself may still be writable (e.g. `path` is a pre-created
      // file in a read-only directory); preserve the old direct behavior.
      std::ofstream direct(path);
      if (!direct) throw std::runtime_error("cannot open for write: " + path);
      direct << doc.dump();
      if (!direct) throw std::runtime_error("write failed: " + path);
      return;
    }
    out << doc.dump();
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("write failed: " + path);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename into place: " + path);
  }
}

}  // namespace ihtl::telemetry
