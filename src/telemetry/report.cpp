#include "telemetry/report.h"

#include <fstream>
#include <stdexcept>

namespace ihtl::telemetry {

JsonValue metrics_to_json(const MetricsRegistry& reg) {
  JsonValue out = JsonValue::object();

  JsonValue spans = JsonValue::object();
  for (const auto& [path, s] : reg.spans()) {
    JsonValue entry = JsonValue::object();
    entry.set("count", s.count);
    entry.set("total_s", s.total_s);
    entry.set("avg_s", s.avg_s());
    entry.set("min_s", s.min_s);
    entry.set("max_s", s.max_s);
    spans.set(path, std::move(entry));
  }
  out.set("spans", std::move(spans));

  JsonValue counters = JsonValue::object();
  for (const auto& [name, v] : reg.counters()) counters.set(name, v);
  out.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::object();
  for (const auto& [name, v] : reg.gauges()) gauges.set(name, v);
  out.set("gauges", std::move(gauges));

  return out;
}

JsonValue make_report(const MetricsRegistry& reg, JsonValue run,
                      JsonValue graph, JsonValue config) {
  JsonValue out = JsonValue::object();
  out.set("run", std::move(run));
  out.set("graph", std::move(graph));
  out.set("config", std::move(config));
  JsonValue snapshot = metrics_to_json(reg);
  for (const auto& [key, value] : snapshot.entries()) {
    out.set(key, value);
  }
  return out;
}

void write_json_file(const JsonValue& doc, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open for write: " + path);
  }
  out << doc.dump();
  if (!out) {
    throw std::runtime_error("write failed: " + path);
  }
}

}  // namespace ihtl::telemetry
