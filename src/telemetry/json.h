// Minimal dependency-free JSON document: build, serialize, parse.
//
// The telemetry reports (--metrics-out, BENCH_*.json) need a stable
// machine-readable format, and bench_diff needs to read it back; this is the
// smallest JSON implementation that supports both directions. Objects keep
// insertion order so emitted schemas are byte-stable across runs. Numbers
// are doubles, which is exact for counters below 2^53 — far beyond any
// counter this library produces.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ihtl::telemetry {

class JsonValue {
 public:
  enum class Type { null, boolean, number, string, array, object };

  using Array = std::vector<JsonValue>;
  /// Insertion-ordered key/value pairs (stable output schema).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;
  JsonValue(bool b) : type_(Type::boolean), bool_(b) {}
  JsonValue(double v) : type_(Type::number), num_(v) {}
  JsonValue(std::int64_t v)
      : type_(Type::number), num_(static_cast<double>(v)) {}
  JsonValue(std::uint64_t v)
      : type_(Type::number), num_(static_cast<double>(v)) {}
  JsonValue(int v) : type_(Type::number), num_(v) {}
  JsonValue(std::string s) : type_(Type::string), str_(std::move(s)) {}
  JsonValue(const char* s) : type_(Type::string), str_(s) {}

  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::object;
    return v;
  }
  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::array;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::null; }
  bool is_bool() const { return type_ == Type::boolean; }
  bool is_number() const { return type_ == Type::number; }
  bool is_string() const { return type_ == Type::string; }
  bool is_array() const { return type_ == Type::array; }
  bool is_object() const { return type_ == Type::object; }

  bool as_bool() const {
    require(Type::boolean);
    return bool_;
  }
  double as_number() const {
    require(Type::number);
    return num_;
  }
  const std::string& as_string() const {
    require(Type::string);
    return str_;
  }
  const Array& items() const {
    require(Type::array);
    return arr_;
  }
  const Object& entries() const {
    require(Type::object);
    return obj_;
  }

  /// Object lookup; nullptr if absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (type_ != Type::object) return nullptr;
    for (const auto& [k, v] : obj_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Object insert-or-assign; converts a null value into an object first.
  JsonValue& set(std::string key, JsonValue value) {
    if (type_ == Type::null) type_ = Type::object;
    require(Type::object);
    for (auto& [k, v] : obj_) {
      if (k == key) {
        v = std::move(value);
        return v;
      }
    }
    obj_.emplace_back(std::move(key), std::move(value));
    return obj_.back().second;
  }

  /// Array append; converts a null value into an array first.
  void push_back(JsonValue value) {
    if (type_ == Type::null) type_ = Type::array;
    require(Type::array);
    arr_.push_back(std::move(value));
  }

  /// Serializes the document. `indent` > 0 pretty-prints.
  std::string dump(int indent = 2) const;

  /// Parses a complete JSON document; throws std::runtime_error with a
  /// byte offset on malformed input or trailing garbage.
  static JsonValue parse(std::string_view text);

 private:
  void require(Type t) const {
    if (type_ != t) throw std::runtime_error("JsonValue: wrong type access");
  }
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace ihtl::telemetry
