#include "telemetry/exposition.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <string_view>

#include "telemetry/histogram.h"
#include "telemetry/metrics.h"

namespace ihtl::telemetry {

namespace {

bool legal_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_value(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_sample(std::string& out, const std::string& name, double value) {
  out += name;
  out += ' ';
  append_value(out, value);
  out += '\n';
}

void append_type(std::string& out, const std::string& name,
                 const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string sanitize_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out += '_';
  for (char c : name) out += legal_name_char(c) ? c : '_';
  if (out.empty()) out = "_";
  return out;
}

std::string registry_exposition(const MetricsRegistry& reg,
                                const std::string& prefix) {
  std::string out;
  for (const auto& [name, total] : reg.counters()) {
    const std::string metric = prefix + "_" + sanitize_metric_name(name);
    append_type(out, metric, "counter");
    append_sample(out, metric, static_cast<double>(total));
  }
  for (const auto& [name, value] : reg.gauges()) {
    const std::string metric = prefix + "_" + sanitize_metric_name(name);
    append_type(out, metric, "gauge");
    append_sample(out, metric, value);
  }
  for (const auto& [name, stats] : reg.spans()) {
    const std::string base = prefix + "_" + sanitize_metric_name(name);
    append_type(out, base + "_seconds_sum", "gauge");
    append_sample(out, base + "_seconds_sum", stats.total_s);
    append_type(out, base + "_count", "counter");
    append_sample(out, base + "_count", static_cast<double>(stats.count));
  }
  return out;
}

void append_histogram_exposition(std::string& out, const std::string& name,
                                 const std::string& labels,
                                 const LatencyHistogram& hist) {
  const std::string metric = sanitize_metric_name(name);
  append_type(out, metric, "histogram");
  // Find the highest non-empty bucket so an idle op class costs two lines,
  // not sixty-six.
  std::size_t top = 0;
  for (std::size_t i = 0; i < LatencyHistogram::num_buckets(); ++i) {
    if (hist.bucket_count(i) > 0) top = i;
  }
  const std::string sep = labels.empty() ? "" : ",";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= top; ++i) {
    cumulative += hist.bucket_count(i);
    if (cumulative == 0) continue;  // skip the leading run of empty buckets
    out += metric;
    out += "_bucket{";
    out += labels;
    out += sep;
    out += "le=\"";
    append_value(out, LatencyHistogram::bucket_upper_us(i));
    out += "\"} ";
    append_value(out, static_cast<double>(cumulative));
    out += '\n';
  }
  out += metric;
  out += "_bucket{";
  out += labels;
  out += sep;
  out += "le=\"+Inf\"} ";
  append_value(out, static_cast<double>(hist.count()));
  out += '\n';
  const std::string tail =
      labels.empty() ? std::string() : "{" + labels + "}";
  append_sample(out, metric + "_sum" + tail,
                static_cast<double>(hist.sum_ns()) * 1e-3);
  append_sample(out, metric + "_count" + tail,
                static_cast<double>(hist.count()));
}

bool validate_exposition(const std::string& text, std::string* error) {
  auto fail = [&](std::string_view line, const char* why) {
    if (error) *error = std::string(why) + ": " + std::string(line);
    return false;
  };
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    // name
    std::size_t i = 0;
    while (i < line.size() && legal_name_char(line[i])) ++i;
    if (i == 0) return fail(line, "no metric name");
    if (line[0] >= '0' && line[0] <= '9') {
      return fail(line, "name starts with digit");
    }
    // optional {labels}
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string_view::npos) {
        return fail(line, "unterminated label set");
      }
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      return fail(line, "missing space before value");
    }
    ++i;
    std::string_view value = line.substr(i);
    if (value.empty()) return fail(line, "missing value");
    if (value == "+Inf" || value == "-Inf" || value == "NaN") continue;
    double parsed = 0.0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc{} || ptr != value.data() + value.size()) {
      return fail(line, "unparseable value");
    }
  }
  if (error) error->clear();
  return true;
}

}  // namespace ihtl::telemetry
