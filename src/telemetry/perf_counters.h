// Hardware performance counters over Linux perf_event_open.
//
// The paper's locality argument (Table 3: push-to-hubs keeps random writes
// L2-resident, cutting LLC misses) can only be validated on real hardware
// with real counters; the cachesim model is a proxy. This layer samples six
// events — cycles, instructions, LLC loads, LLC load misses, L1d load
// misses, dTLB load misses — per THREAD (perf counters are thread-scoped),
// so the pool workers each carry their own counter group and phase deltas
// aggregate across workers.
//
// Availability is a runtime property: perf_event_open fails under
// restrictive perf_event_paranoid, seccomp-filtered containers, and on
// non-Linux builds. Every entry point degrades to "unavailable" values
// (available == false) instead of erroring, so instrumented code needs no
// platform guards and reports state `hw_counters: {available: false}`
// explicitly rather than silently omitting data.
#pragma once

#include <cstdint>
#include <string>

namespace ihtl::telemetry {

class MetricsRegistry;

/// One snapshot (or delta) of the six-event counter set. `available` is
/// false when the counters could not be read — all values are then zero and
/// consumers must not divide by them.
struct PerfCounterValues {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_loads = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t dtlb_misses = 0;
  bool available = false;

  /// Monotone delta (clamped at 0 per field — multiplexing scaling can make
  /// raw reads wobble backwards by a few counts).
  PerfCounterValues delta_since(const PerfCounterValues& base) const;
  void accumulate(const PerfCounterValues& d);
  double ipc() const {
    return cycles ? static_cast<double>(instructions) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
};

/// A per-thread set of perf file descriptors, one per event. Events are
/// opened individually (not as a kernel group) so one unsupported event —
/// LLC events are absent on some PMUs — doesn't void the rest; the kernel
/// time-multiplexes and reads are scaled by time_enabled/time_running.
/// Open/read only valid from the owning thread.
class PerfCounterGroup {
 public:
  PerfCounterGroup() = default;
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// Opens the event set for the CALLING thread; idempotent. Returns true
  /// if at least cycles and instructions opened (the IPC floor).
  bool open();
  void close();
  bool is_open() const { return opened_; }

  /// Reads the current counts (scaled for multiplexing). Unavailable
  /// (all-zero, available=false) when not open.
  PerfCounterValues read() const;

  /// Why open() failed (empty while open or before the first attempt).
  const std::string& error() const { return error_; }

  static constexpr int kNumEvents = 6;

 private:
  int fds_[kNumEvents] = {-1, -1, -1, -1, -1, -1};
  bool opened_ = false;
  std::string error_;
};

/// Process-wide profiling switch. When enabled, each thread lazily opens a
/// PerfCounterGroup on first snapshot; ThreadPool::run snapshots around
/// every job on every worker and accumulates the deltas into the span path
/// installed by the innermost PhaseScope.
namespace perf {

/// Turns profiling on and probes availability on the calling thread.
/// Returns the availability (false => see unavailable_reason()).
bool enable();
void disable();
bool enabled();

/// Meaningful after enable(); false before.
bool available();
std::string unavailable_reason();

/// Forces the unavailable path (tests, and callers that want the software-
/// spans-only report without touching the syscall). Sticky until cleared.
void force_unavailable(const std::string& reason);
void clear_forced_unavailable();

/// Counter snapshot of the calling thread; unavailable values when
/// profiling is off or the thread's group could not open.
PerfCounterValues snapshot_this_thread();

/// True when ThreadPool::run should capture per-worker deltas: profiling
/// enabled, counters available, and a PhaseScope target installed.
bool capture_armed();

/// Called by ThreadPool::run with one worker's per-job delta; adds it to
/// the installed PhaseScope's registry under its span path. No-op without
/// a target.
void accumulate_job_delta(const PerfCounterValues& delta);

/// RAII target for per-worker capture: while alive, every pool job's
/// per-worker counter deltas accumulate into `reg` under `path` (the same
/// namespace as the span tree, e.g. "spmv/push"). Scopes nest; the
/// innermost wins. Construction is one atomic exchange — cheap enough to
/// wrap every engine phase unconditionally.
class PhaseScope {
 public:
  PhaseScope(MetricsRegistry* reg, std::string path);
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  friend void accumulate_job_delta(const PerfCounterValues&);
  MetricsRegistry* reg_;
  std::string path_;
  PhaseScope* prev_;
};

}  // namespace perf

}  // namespace ihtl::telemetry
