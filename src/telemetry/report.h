// Serialization of registry snapshots to the stable perf-report schema.
//
// Single run:  { "run": {...}, "graph": {...}, "config": {...},
//                "spans": {path: {count,total_s,avg_s,min_s,max_s}},
//                "counters": {name: value}, "gauges": {name: value} }
// Suite:       { "run": {...}, "config": {...}, "datasets": [single-run
//                objects minus "run"/"config"] }
// bench_diff and the telemetry tests re-parse these documents, so the
// schema is part of the repo's compatibility surface — extend it by adding
// keys, never by renaming them.
#pragma once

#include <string>

#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace ihtl::telemetry {

/// Snapshot of `reg` as {"spans": ..., "counters": ..., "gauges": ...}.
/// Span entries carry count/total_s/avg_s/min_s/max_s; keys are sorted.
JsonValue metrics_to_json(const MetricsRegistry& reg);

/// Full single-run report: run/graph/config sections (caller-built objects,
/// any may be null) followed by the registry snapshot sections.
JsonValue make_report(const MetricsRegistry& reg, JsonValue run,
                      JsonValue graph, JsonValue config);

/// Writes `doc.dump()` to `path`; throws std::runtime_error if the file
/// cannot be opened or the write fails.
void write_json_file(const JsonValue& doc, const std::string& path);

}  // namespace ihtl::telemetry
