#include "telemetry/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace ihtl::telemetry {

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; emit null so the document stays parseable.
    out += "null";
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::null: out += "null"; break;
    case Type::boolean: out += bool_ ? "true" : "false"; break;
    case Type::number: number_into(out, num_); break;
    case Type::string: escape_into(out, str_); break;
    case Type::array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_into(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through individually; telemetry strings are ASCII in practice).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* endp = nullptr;
    const double v = std::strtod(token.c_str(), &endp);
    if (endp != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    return JsonValue(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace ihtl::telemetry
