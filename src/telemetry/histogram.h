// Log-bucketed latency histogram with percentile estimation.
//
// The span timers (TimerStat) keep count/total/min/max only — enough for
// phase breakdowns, useless for request-latency SLOs. This histogram fills
// the gap for the serving layer: recording is one relaxed fetch_add on a
// power-of-two bucket (wait-free, callable from every connection thread),
// and percentiles are reconstructed from the bucket counts on demand. A
// bucket spans one binary order of magnitude of nanoseconds, and the
// estimator answers with the bucket's geometric midpoint, so a reported
// p99 is within ~1.4x of the true value — the resolution that matters for
// "did tail latency double", not for nanosecond accounting.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace ihtl::telemetry {

class MetricsRegistry;

class LatencyHistogram {
 public:
  /// Records one latency sample. Thread-safe, wait-free.
  void record_ns(std::uint64_t ns);
  void record_seconds(double s) {
    record_ns(s <= 0 ? 0 : static_cast<std::uint64_t>(s * 1e9));
  }

  /// Samples recorded so far.
  std::uint64_t count() const;

  /// Sum of all recorded samples in nanoseconds (exact, not bucketed) —
  /// the `_sum` series of the Prometheus exposition, and what makes
  /// phase-sum-vs-wire-latency cross-checks possible.
  std::uint64_t sum_ns() const {
    return sum_ns_.load(std::memory_order_relaxed);
  }

  /// Folds `other`'s samples into this histogram (bucket-wise adds plus
  /// sum/max). Not linearizable against concurrent record_ns on either
  /// side; meant for aggregating per-op-class histograms into a combined
  /// view at export time.
  void merge(const LatencyHistogram& other);

  /// Count of bucket `i` (samples with bit_width(ns) == i).
  std::uint64_t bucket_count(std::size_t i) const {
    return i < kBuckets ? buckets_[i].load(std::memory_order_relaxed) : 0;
  }
  static constexpr std::size_t num_buckets() { return kBuckets; }
  /// Exclusive upper bound of bucket `i`, in microseconds (2^i ns).
  static double bucket_upper_us(std::size_t i) {
    return static_cast<double>(std::uint64_t{1} << (i < 63 ? i : 63)) * 1e-3;
  }

  /// Latency (in microseconds) at percentile `p` in [0, 100]; 0 when empty.
  /// Reconstructed from the log buckets (geometric-midpoint estimate,
  /// clamped to max_us). With exactly one sample the answer is that sample,
  /// exact — a one-request histogram reports p50 == the request's latency.
  double percentile_us(double p) const;

  /// Largest sample observed, exact (not bucketed), in microseconds.
  double max_us() const;

  /// Publishes `<prefix>.count` plus `<prefix>.p50_us/.p90_us/.p99_us/
  /// .max_us` as gauges — absolute values, so repeated exports (every
  /// /stats query, every periodic metrics dump) are idempotent.
  void export_gauges(MetricsRegistry& reg, const std::string& prefix) const;

  /// Zeroes all buckets (not linearizable against concurrent recording;
  /// meant for between-phase resets in tests and benches).
  void reset();

 private:
  /// Bucket i counts samples with bit_width(ns) == i, i.e. [2^(i-1), 2^i).
  static constexpr std::size_t kBuckets = 64;
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> max_ns_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

}  // namespace ihtl::telemetry
