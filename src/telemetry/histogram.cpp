#include "telemetry/histogram.h"

#include <algorithm>
#include <bit>

#include "telemetry/metrics.h"

namespace ihtl::telemetry {

void LatencyHistogram::record_ns(std::uint64_t ns) {
  const std::size_t bucket = std::bit_width(ns);  // 0 -> bucket 0
  buckets_[bucket < kBuckets ? bucket : kBuckets - 1].fetch_add(
      1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t cur = max_ns_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::percentile_us(double p) const {
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  // One sample: every percentile IS that sample, and sum_ns_ holds it
  // exactly — no reason to answer a bucket midpoint that can be off by
  // sqrt(2) in either direction.
  if (total == 1) {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-3;
  }
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the requested percentile (1-based, nearest-rank method).
  const auto rank = static_cast<std::uint64_t>(p / 100.0 *
                                               static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen > rank || (seen == total && counts[i] > 0)) {
      // Bucket i spans [2^(i-1), 2^i) ns; answer its geometric midpoint,
      // clamped to the exact observed maximum (the midpoint of the top
      // occupied bucket can otherwise exceed every recorded sample).
      if (i == 0) return 0.0;
      const double lo = static_cast<double>(std::uint64_t{1} << (i - 1));
      const double est = lo * 1.4142135623730951 * 1e-3;  // sqrt(2)*lo -> us
      return std::min(est, max_us());
    }
  }
  return 0.0;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  sum_ns_.fetch_add(other.sum_ns_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  const std::uint64_t om = other.max_ns_.load(std::memory_order_relaxed);
  std::uint64_t cur = max_ns_.load(std::memory_order_relaxed);
  while (om > cur &&
         !max_ns_.compare_exchange_weak(cur, om, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::max_us() const {
  return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-3;
}

void LatencyHistogram::export_gauges(MetricsRegistry& reg,
                                     const std::string& prefix) const {
  reg.set_gauge(prefix + ".count", static_cast<double>(count()));
  reg.set_gauge(prefix + ".p50_us", percentile_us(50.0));
  reg.set_gauge(prefix + ".p90_us", percentile_us(90.0));
  reg.set_gauge(prefix + ".p99_us", percentile_us(99.0));
  reg.set_gauge(prefix + ".max_us", max_us());
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace ihtl::telemetry
