#include "telemetry/trace.h"

#include <thread>
#include <unordered_map>

namespace ihtl::telemetry {

namespace {

std::atomic<TraceBuffer*> g_active{nullptr};
std::atomic<std::uint32_t> g_next_thread_slot{0};
std::atomic<std::uint64_t> g_active_flow{0};

const char* kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::span:
      return "span";
    case TraceEventKind::chunk:
      return "chunk";
    case TraceEventKind::steal:
      return "steal";
    case TraceEventKind::phase:
      return "phase";
    case TraceEventKind::flow_begin:
    case TraceEventKind::flow_step:
    case TraceEventKind::flow_end:
      return "flow";
    case TraceEventKind::shard:
      return "shard";
  }
  return "?";
}

}  // namespace

std::uint32_t trace_thread_slot() {
  thread_local const std::uint32_t slot =
      g_next_thread_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void set_active_flow(std::uint64_t flow_id) {
  g_active_flow.store(flow_id, std::memory_order_release);
}

std::uint64_t active_flow() {
  return g_active_flow.load(std::memory_order_acquire);
}

void flow_mark(TraceEventKind kind, std::uint64_t flow_id) {
  TraceBuffer* tb = TraceBuffer::active();
  if (tb == nullptr || flow_id == 0) return;
  tb->record(kind, tb->request_flow_name(), tb->now_ns(), 0,
             static_cast<std::uint32_t>(flow_id), 0);
}

TraceBuffer::TraceBuffer(std::size_t rings, std::size_t capacity_per_ring)
    : epoch_(std::chrono::steady_clock::now()) {
  if (rings == 0) {
    rings = std::thread::hardware_concurrency();
    if (rings == 0) rings = 1;
  }
  rings_n_ = rings;
  capacity_ = capacity_per_ring ? capacity_per_ring : 1;
  rings_ = std::make_unique<Ring[]>(rings_n_);
  for (std::size_t r = 0; r < rings_n_; ++r) {
    rings_[r].slots.resize(capacity_);
  }
  names_.emplace_back("?");        // reserved id 0
  names_.emplace_back("request");  // reserved id 1 (request_flow_name)
}

std::uint32_t TraceBuffer::intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(names_mutex_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<std::uint32_t>(i);
  }
  names_.emplace_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

void TraceBuffer::record(TraceEventKind kind, std::uint32_t name_id,
                         std::uint64_t start_ns, std::uint64_t dur_ns,
                         std::uint32_t arg0, std::uint32_t arg1) {
  if (drop_all_.load(std::memory_order_relaxed)) {
    forced_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint32_t thread = trace_thread_slot();
  Ring& ring = rings_[thread % rings_n_];
  const std::uint64_t seq =
      ring.head.fetch_add(1, std::memory_order_relaxed);
  TraceEvent& slot = ring.slots[seq % capacity_];
  slot.start_ns = start_ns;
  slot.dur_ns = dur_ns;
  slot.name_id = name_id;
  slot.thread = thread;
  slot.arg0 = arg0;
  slot.arg1 = arg1;
  slot.kind = kind;
}

std::uint64_t TraceBuffer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint64_t TraceBuffer::recorded() const {
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < rings_n_; ++r) {
    total += rings_[r].head.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t TraceBuffer::dropped() const {
  std::uint64_t lost = forced_drops_.load(std::memory_order_relaxed);
  for (std::size_t r = 0; r < rings_n_; ++r) {
    const std::uint64_t head = rings_[r].head.load(std::memory_order_relaxed);
    if (head > capacity_) lost += head - capacity_;
  }
  return lost;
}

JsonValue TraceBuffer::to_chrome_trace() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(names_mutex_);
    names = names_;
  }
  auto name_of = [&](std::uint32_t id) -> const std::string& {
    return id < names.size() ? names[id] : names[0];
  };

  JsonValue events = JsonValue::array();
  for (std::size_t r = 0; r < rings_n_; ++r) {
    const Ring& ring = rings_[r];
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t n = head < capacity_ ? head : capacity_;
    for (std::uint64_t i = 0; i < n; ++i) {
      const TraceEvent& e = ring.slots[i];
      const bool is_flow = e.kind == TraceEventKind::flow_begin ||
                           e.kind == TraceEventKind::flow_step ||
                           e.kind == TraceEventKind::flow_end;
      JsonValue ev = JsonValue::object();
      ev.set("name", name_of(e.name_id));
      ev.set("cat", kind_name(e.kind));
      if (is_flow) {
        // Chrome flow-event triple: "s" starts a flow, "t" passes it
        // through a thread, "f" finishes it; events with the same "id" are
        // connected by arrows. "bp":"e" binds the finish to the enclosing
        // slice instead of the next one.
        ev.set("ph", e.kind == TraceEventKind::flow_begin  ? "s"
                     : e.kind == TraceEventKind::flow_step ? "t"
                                                           : "f");
        ev.set("id", static_cast<std::uint64_t>(e.arg0));
        if (e.kind == TraceEventKind::flow_end) ev.set("bp", "e");
      } else {
        ev.set("ph", "X");
      }
      ev.set("ts", static_cast<double>(e.start_ns) / 1e3);   // microseconds
      if (!is_flow) ev.set("dur", static_cast<double>(e.dur_ns) / 1e3);
      ev.set("pid", 1);
      ev.set("tid", static_cast<std::uint64_t>(e.thread));
      JsonValue args = JsonValue::object();
      switch (e.kind) {
        case TraceEventKind::chunk:
        case TraceEventKind::steal:
          args.set("lo", static_cast<std::uint64_t>(e.arg0));
          args.set("hi", static_cast<std::uint64_t>(e.arg1));
          break;
        case TraceEventKind::phase:
          args.set("block", static_cast<std::uint64_t>(e.arg0));
          args.set("direct", e.arg1 != 0);
          break;
        case TraceEventKind::shard:
          args.set("shard", static_cast<std::uint64_t>(e.arg0));
          args.set("team", static_cast<std::uint64_t>(e.arg1));
          break;
        case TraceEventKind::flow_begin:
        case TraceEventKind::flow_step:
        case TraceEventKind::flow_end:
          args.set("request", static_cast<std::uint64_t>(e.arg0));
          break;
        case TraceEventKind::span:
          break;
      }
      ev.set("args", std::move(args));
      events.push_back(std::move(ev));
    }
  }

  JsonValue doc = JsonValue::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  JsonValue other = JsonValue::object();
  other.set("recorded_events", recorded());
  other.set("dropped_events", dropped());
  other.set("rings", static_cast<std::uint64_t>(rings_n_));
  other.set("capacity_per_ring", static_cast<std::uint64_t>(capacity_));
  doc.set("otherData", std::move(other));
  return doc;
}

TraceBuffer* TraceBuffer::active() {
  return g_active.load(std::memory_order_acquire);
}

TraceBuffer* TraceBuffer::set_active(TraceBuffer* buffer) {
  return g_active.exchange(buffer, std::memory_order_acq_rel);
}

}  // namespace ihtl::telemetry
