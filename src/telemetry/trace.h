// Per-thread timeline tracing: lock-free event rings + Chrome trace export.
//
// Wall-clock spans tell you how long a phase took; the timeline tells you
// WHY — which worker ran which chunk when, where the steals landed, how the
// flipped blocks interleave. Each OS thread writes fixed-size TraceEvents
// into its own ring buffer (single writer per ring in the common case; ids
// beyond the ring count fold, racing writers may then overwrite each other
// — acceptable for a diagnostic trace, never unsafe). Rings wrap: when a
// buffer overflows, the OLDEST events are overwritten and counted as
// dropped, so tracing a long run degrades to "most recent window" instead
// of growing without bound or crashing.
//
// Export is the Chrome trace_event JSON format ("ph":"X" complete events),
// loadable in chrome://tracing and Perfetto. Producers record through the
// process-wide active() buffer — a single relaxed load when tracing is off.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/json.h"

namespace ihtl::telemetry {

enum class TraceEventKind : std::uint8_t {
  span = 0,   ///< ScopedSpan scope (args: none)
  chunk = 1,  ///< parallel_for chunk from the worker's own slice (lo, hi)
  steal = 2,  ///< parallel_for chunk stolen from a victim slice (lo, hi)
  phase = 3,  ///< engine phase / per-flipped-block push item (block, direct)
  // Request-flow markers (serving layer): instantaneous events carrying a
  // request id in arg0, exported as Chrome flow events ("ph": "s"/"t"/"f")
  // so chrome://tracing draws an arrow from the handler thread through the
  // dispatch thread to every pool worker that computed for the request.
  flow_begin = 4,  ///< request accepted on the handler thread
  flow_step = 5,   ///< request touched this thread (dispatch, pool worker)
  flow_end = 6,    ///< response serialized on the handler thread
  shard = 7,  ///< per-shard phase slice of a ShardedEngine call (shard, team)
};

/// Fixed-size POD event; written whole into a ring slot.
struct TraceEvent {
  std::uint64_t start_ns = 0;  ///< relative to the buffer's construction
  std::uint64_t dur_ns = 0;
  std::uint32_t name_id = 0;   ///< interned via TraceBuffer::intern
  std::uint32_t thread = 0;    ///< process-wide stable OS-thread slot
  std::uint32_t arg0 = 0;
  std::uint32_t arg1 = 0;
  TraceEventKind kind = TraceEventKind::span;
};

/// Process-wide stable small integer for the calling OS thread (assigned on
/// first use). Used as the Chrome trace "tid" and to pick the ring.
std::uint32_t trace_thread_slot();

/// Process-wide id of the request currently being computed (0 = none). Set
/// by the batcher's dispatch thread around a flush; pool workers read it to
/// stamp flow_step events. A single global is sufficient because the serve
/// layer has exactly ONE dispatch thread, so at most one request group is
/// in compute at a time.
void set_active_flow(std::uint64_t flow_id);
std::uint64_t active_flow();

/// Records an instantaneous flow marker for `flow_id` on the calling
/// thread, into the active TraceBuffer. No-op (one relaxed load) when
/// tracing is off. `kind` must be one of flow_begin/flow_step/flow_end.
void flow_mark(TraceEventKind kind, std::uint64_t flow_id);

class TraceBuffer {
 public:
  /// `rings` = number of event rings (0 = hardware concurrency; thread
  /// slots beyond it fold). `capacity_per_ring` = events retained per ring
  /// before wrap-around.
  explicit TraceBuffer(std::size_t rings = 0,
                       std::size_t capacity_per_ring = 1 << 14);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Interns `name` and returns its id (registry mutex; call outside hot
  /// loops and cache the id). Id 0 is the reserved "?" name.
  std::uint32_t intern(std::string_view name);

  /// Records one event on the calling thread's ring. Wait-free: a relaxed
  /// fetch_add plus a slot write; overflow overwrites the oldest event.
  void record(TraceEventKind kind, std::uint32_t name_id,
              std::uint64_t start_ns, std::uint64_t dur_ns,
              std::uint32_t arg0 = 0, std::uint32_t arg1 = 0);

  /// Nanoseconds since this buffer was constructed (steady clock).
  std::uint64_t now_ns() const;

  /// Events accepted by record() (including ones later overwritten).
  std::uint64_t recorded() const;
  /// Events lost: overwritten by wrap-around plus force-dropped ones.
  std::uint64_t dropped() const;

  /// Fault injection (check/*): when set, record() drops every event (and
  /// counts it) — the overflow-degradation path, forced to 100%.
  void set_drop_all(bool drop) {
    drop_all_.store(drop, std::memory_order_relaxed);
  }

  /// Chrome trace_event document: {"traceEvents": [...], "displayTimeUnit":
  /// "ms", "otherData": {recorded/dropped/ring stats}}. Call after the
  /// traced work quiesced; racing writers may tear the youngest events.
  JsonValue to_chrome_trace() const;

  std::size_t ring_count() const { return rings_n_; }
  std::size_t capacity_per_ring() const { return capacity_; }

  /// Pre-interned name id for request-flow markers ("request"), so hot-path
  /// producers (flow_mark, ThreadPool::run) never touch the names mutex.
  std::uint32_t request_flow_name() const { return kRequestFlowNameId; }

  /// Process-wide active buffer; nullptr disables all producers. Installers
  /// must uninstall (set_active(previous)) before destroying the buffer.
  static TraceBuffer* active();
  /// Returns the previously active buffer.
  static TraceBuffer* set_active(TraceBuffer* buffer);

 private:
  static constexpr std::uint32_t kRequestFlowNameId = 1;

  struct Ring {
    std::vector<TraceEvent> slots;
    std::atomic<std::uint64_t> head{0};
  };

  std::size_t rings_n_;
  std::size_t capacity_;
  std::unique_ptr<Ring[]> rings_;
  std::atomic<std::uint64_t> forced_drops_{0};
  std::atomic<bool> drop_all_{false};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex names_mutex_;
  std::vector<std::string> names_;
};

}  // namespace ihtl::telemetry
