// Metrics registry: named counters, gauges, and span timers.
//
// Counters are sharded per thread (one cache line per shard, mirroring the
// PerThread layout used by the SpMV buffers) so hot-path increments are a
// single relaxed fetch_add on a thread-private line — wait-free and free of
// false sharing. Span timers aggregate count/total/min/max with relaxed
// atomics, so a pre-resolved handle can be updated from the SpMV hot loop
// without taking the registry lock. The registry mutex guards only name
// registration and snapshotting; handles stay valid for the registry's
// lifetime (clear() zeroes values but never invalidates handles).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/perf_counters.h"

namespace ihtl::telemetry {

class TraceBuffer;

namespace detail {

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct CounterShards {
  explicit CounterShards(std::size_t n) : cells(n) {}
  std::vector<CounterCell> cells;
};

struct TimerCells {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> min_ns{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_ns{0};
};

}  // namespace detail

/// Wait-free handle to a sharded counter. Default-constructed handles are
/// inert no-ops, so instrumented code needs no null checks.
class Counter {
 public:
  Counter() = default;

  /// Adds `v` to the calling thread's shard. `tid` is the pool worker id;
  /// ids beyond the shard count fold onto a shard (still race-free — shards
  /// are atomics).
  void add(std::size_t tid, std::uint64_t v) {
    if (!shards_) return;
    auto& cells = shards_->cells;
    const std::size_t i = tid < cells.size() ? tid : tid % cells.size();
    cells[i].value.fetch_add(v, std::memory_order_relaxed);
  }
  void inc(std::size_t tid) { add(tid, 1); }

  /// Sum over all shards.
  std::uint64_t total() const {
    if (!shards_) return 0;
    std::uint64_t sum = 0;
    for (const auto& c : shards_->cells) {
      sum += c.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterShards* s) : shards_(s) {}
  detail::CounterShards* shards_ = nullptr;
};

/// Aggregated statistics of one span timer (one phase-tree node).
struct SpanStats {
  std::uint64_t count = 0;
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  double avg_s() const { return count ? total_s / static_cast<double>(count) : 0.0; }
};

/// Handle to a span timer; recording is a handful of relaxed atomics.
/// Default-constructed handles are inert no-ops.
class TimerStat {
 public:
  TimerStat() = default;

  void record_ns(std::uint64_t ns) {
    if (!cells_) return;
    cells_->count.fetch_add(1, std::memory_order_relaxed);
    cells_->total_ns.fetch_add(ns, std::memory_order_relaxed);
    update_min(cells_->min_ns, ns);
    update_max(cells_->max_ns, ns);
  }
  void record_seconds(double s) {
    record_ns(s <= 0 ? 0 : static_cast<std::uint64_t>(s * 1e9));
  }

 private:
  friend class MetricsRegistry;
  explicit TimerStat(detail::TimerCells* c) : cells_(c) {}
  static void update_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void update_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  detail::TimerCells* cells_ = nullptr;
};

/// Aggregated hardware-counter deltas attributed to one span path (summed
/// over every sample — one per worker per pool job under a PhaseScope, one
/// per ScopedSpan stop on the recording thread).
struct HwStats {
  PerfCounterValues sum;
  std::uint64_t samples = 0;
};

/// Registry of named metrics. Thread-safe; one instance per measurement
/// scope (the process-wide `global()` backs the CLI and the engines by
/// default, benches snapshot per-dataset registries or clear the global).
class MetricsRegistry {
 public:
  /// `shards` = per-counter shard count (0 = hardware concurrency).
  explicit MetricsRegistry(std::size_t shards = 0);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create; the returned handle is valid for the registry lifetime.
  Counter counter(const std::string& name);
  TimerStat timer(const std::string& path);

  /// Convenience slow paths (one lock each).
  void add(const std::string& name, std::uint64_t v) { counter(name).add(0, v); }
  void record_span(const std::string& path, double seconds) {
    timer(path).record_seconds(seconds);
  }
  void set_gauge(const std::string& name, double value);

  std::uint64_t counter_total(const std::string& name) const;
  std::optional<SpanStats> span(const std::string& path) const;
  std::optional<double> gauge(const std::string& name) const;

  /// Adds one HW-counter delta under `path` (same namespace as the span
  /// tree). Unavailable deltas are dropped, so callers can record
  /// unconditionally.
  void add_hw(const std::string& path, const PerfCounterValues& delta);
  std::optional<HwStats> hw_stats(const std::string& path) const;

  /// Records whether hardware counters were usable for this measurement
  /// scope (and why not); reports emit it as the `hw_counters` section.
  void set_hw_status(bool available, std::string reason = "");
  std::optional<std::pair<bool, std::string>> hw_status() const;

  // Snapshots (sorted by name; values read with relaxed loads).
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, SpanStats> spans() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, HwStats> hw() const;

  /// Zeroes every value but keeps registrations, so previously handed-out
  /// Counter/TimerStat handles remain valid.
  void clear();

  std::size_t shard_count() const { return shards_; }

  /// Process-wide default registry.
  static MetricsRegistry& global();

 private:
  static SpanStats to_stats(const detail::TimerCells& c);

  std::size_t shards_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<detail::CounterShards>> counters_;
  std::map<std::string, std::unique_ptr<detail::TimerCells>> timers_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HwStats> hw_;
  std::optional<std::pair<bool, std::string>> hw_status_;
};

/// RAII span: times its own scope and records the elapsed time under the
/// '/'-joined path of all enclosing ScopedSpans on this thread ("spmv/push",
/// "preprocess/hub-select"). Spans must nest lexically (guaranteed by RAII).
/// A null registry still participates in path nesting but records nothing.
///
/// When perf profiling is enabled, the span also snapshots the calling
/// thread's HW counters at both boundaries and records the delta under its
/// path (MetricsRegistry::add_hw) — counters observed on the RECORDING
/// thread only; use perf::PhaseScope for all-worker phase deltas. When a
/// TraceBuffer is active at both boundaries, the span additionally lands as
/// one timeline event.
class ScopedSpan {
 public:
  ScopedSpan(MetricsRegistry& reg, std::string_view name)
      : ScopedSpan(&reg, name) {}
  ScopedSpan(MetricsRegistry* reg, std::string_view name);
  ~ScopedSpan() { stop(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Records now instead of at scope exit; idempotent. Returns the elapsed
  /// seconds (0 on the second and later calls).
  double stop();

 private:
  using clock = std::chrono::steady_clock;
  MetricsRegistry* reg_;
  clock::time_point start_;
  bool open_ = true;
  PerfCounterValues hw_start_;
  TraceBuffer* trace_ = nullptr;  ///< active buffer at construction
  std::uint64_t trace_start_ns_ = 0;
};

}  // namespace ihtl::telemetry
