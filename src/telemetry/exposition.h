// Prometheus-style text exposition of a MetricsRegistry.
//
// The JSON metrics dump (--metrics-out) is the machine-diffable archive
// format; the text exposition is the *scrape* format — what a Prometheus
// agent, a curl in CI, or the ihtl_top client reads from a live daemon's
// `metrics` op. One line per sample, `# TYPE` comments, histogram series
// with cumulative `le` buckets. We emit exposition-format-0.0.4 text
// (without HELP lines) and keep a small validator here so tests and CI can
// assert well-formedness without a real Prometheus binary.
#pragma once

#include <string>

namespace ihtl::telemetry {

class MetricsRegistry;
class LatencyHistogram;

/// Rewrites `name` into a legal Prometheus metric name: every character
/// outside [a-zA-Z0-9_:] becomes '_' (so "serve.cache.hits" →
/// "serve_cache_hits"); a leading digit gets a '_' prefix.
std::string sanitize_metric_name(const std::string& name);

/// Renders every counter, gauge, and span timer in `reg` as exposition
/// text. Counters become `<prefix>_<name>` counter samples; gauges become
/// gauge samples; each span timer becomes a `<prefix>_<name>_seconds_sum`
/// gauge plus `<prefix>_<name>_count` counter pair.
std::string registry_exposition(const MetricsRegistry& reg,
                                const std::string& prefix = "ihtl");

/// Appends one histogram as a cumulative-bucket series named `<name>` with
/// the given `labels` (e.g. `op="ppr",phase="queue"`; pass "" for none):
/// `<name>_bucket{...,le="<µs>"}` lines up to the highest non-empty bucket,
/// the `+Inf` bucket, then `<name>_sum` (µs) and `<name>_count`.
void append_histogram_exposition(std::string& out, const std::string& name,
                                 const std::string& labels,
                                 const LatencyHistogram& hist);

/// Checks that `text` parses as exposition format: every line is empty, a
/// '#' comment, or `name{labels} value` with a legal metric name and a
/// parseable finite-or-inf value. Returns false and fills `error` with the
/// offending line on the first violation.
bool validate_exposition(const std::string& text, std::string* error);

}  // namespace ihtl::telemetry
