// Structured, leveled, ring-buffered event log for long-lived daemons.
//
// The metrics registry answers "how much/how often"; this log answers
// "what happened, when, with what context" — the slow-request captures,
// watchdog trips, and lifecycle events a production daemon needs to keep
// around without unbounded growth. Events are JSON objects; the newest
// `capacity` are retained in a ring (older ones are overwritten and
// counted), and an optional sink file receives every accepted event as one
// JSON line (append-only, flushed per event, so a crash loses at most the
// in-flight line).
//
// Logging takes a mutex: this is a per-event control-plane path (slow
// requests, anomalies), never a per-edge hot path.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace ihtl::telemetry {

enum class LogLevel : std::uint8_t { debug = 0, info = 1, warn = 2, error = 3 };

const char* log_level_name(LogLevel level);

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 1024);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Events below this level are discarded (default: info).
  void set_min_level(LogLevel level);
  LogLevel min_level() const;

  /// Opens `path` for appending JSON lines (one object per accepted
  /// event). Returns false (and logs nowhere extra) if the file cannot be
  /// opened.
  bool open_sink(const std::string& path);

  /// Records one event: `event` names what happened ("slow_request",
  /// "watchdog_queue_saturation"), `fields` carries the structured context
  /// (must be an object; its keys are merged into the emitted line).
  void log(LogLevel level, const std::string& event,
           JsonValue fields = JsonValue::object());

  /// Events accepted (level-filtered events excluded).
  std::uint64_t recorded() const;
  /// Events overwritten by ring wrap-around.
  std::uint64_t dropped() const;
  std::size_t capacity() const { return capacity_; }

  /// The retained events, oldest first, as a JSON array. Each entry:
  /// {"seq": N, "ts_ms": unix-millis, "level": "...", "event": "...",
  ///  ...fields}.
  JsonValue snapshot() const;

  /// Number of retained "event" == `name` entries (test/CI convenience).
  std::uint64_t count_event(const std::string& name) const;

 private:
  struct Entry {
    std::uint64_t seq = 0;
    std::uint64_t ts_ms = 0;
    LogLevel level = LogLevel::info;
    std::string event;
    JsonValue fields;
  };

  static JsonValue to_json(const Entry& e);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Entry> ring_;
  std::uint64_t head_ = 0;  ///< next sequence number / total accepted
  LogLevel min_level_ = LogLevel::info;
  std::ofstream sink_;
};

}  // namespace ihtl::telemetry
