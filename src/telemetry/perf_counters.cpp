#include "telemetry/perf_counters.h"

#include <atomic>
#include <cstring>
#include <mutex>

#include "telemetry/metrics.h"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace ihtl::telemetry {

namespace {

std::uint64_t sub_clamped(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

}  // namespace

PerfCounterValues PerfCounterValues::delta_since(
    const PerfCounterValues& base) const {
  PerfCounterValues d;
  d.available = available && base.available;
  if (!d.available) return d;
  d.cycles = sub_clamped(cycles, base.cycles);
  d.instructions = sub_clamped(instructions, base.instructions);
  d.llc_loads = sub_clamped(llc_loads, base.llc_loads);
  d.llc_misses = sub_clamped(llc_misses, base.llc_misses);
  d.l1d_misses = sub_clamped(l1d_misses, base.l1d_misses);
  d.dtlb_misses = sub_clamped(dtlb_misses, base.dtlb_misses);
  return d;
}

void PerfCounterValues::accumulate(const PerfCounterValues& d) {
  if (!d.available) return;
  available = true;
  cycles += d.cycles;
  instructions += d.instructions;
  llc_loads += d.llc_loads;
  llc_misses += d.llc_misses;
  l1d_misses += d.l1d_misses;
  dtlb_misses += d.dtlb_misses;
}

#ifdef __linux__

namespace {

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr std::uint64_t cache_config(std::uint64_t cache, std::uint64_t op,
                                     std::uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

// Index order matches the PerfCounterValues fields.
constexpr EventSpec kEvents[PerfCounterGroup::kNumEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE,
     cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_HW_CACHE,
     cache_config(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_HW_CACHE,
     cache_config(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
                  PERF_COUNT_HW_CACHE_RESULT_MISS)},
};

int open_event(const EventSpec& spec) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // self-monitoring works at perf_event_paranoid<=2
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid=0, cpu=-1: this thread, any CPU.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0UL));
}

/// Scales a multiplexed read to its whole-interval estimate.
std::uint64_t read_scaled(int fd) {
  if (fd < 0) return 0;
  std::uint64_t buf[3] = {0, 0, 0};  // value, time_enabled, time_running
  const ssize_t n = ::read(fd, buf, sizeof(buf));
  if (n != static_cast<ssize_t>(sizeof(buf))) return 0;
  if (buf[2] == 0) return 0;  // never scheduled onto the PMU
  if (buf[1] == buf[2]) return buf[0];
  const double scale =
      static_cast<double>(buf[1]) / static_cast<double>(buf[2]);
  return static_cast<std::uint64_t>(static_cast<double>(buf[0]) * scale);
}

}  // namespace

bool PerfCounterGroup::open() {
  if (opened_) return true;
  int first_errno = 0;
  int opened_count = 0;
  for (int i = 0; i < kNumEvents; ++i) {
    fds_[i] = open_event(kEvents[i]);
    if (fds_[i] >= 0) {
      ++opened_count;
    } else if (first_errno == 0) {
      first_errno = errno;
    }
  }
  // IPC is the floor: without cycles + instructions the table is useless.
  if (fds_[0] < 0 || fds_[1] < 0) {
    error_ = std::string("perf_event_open failed: ") +
             std::strerror(first_errno ? first_errno : EINVAL) +
             " (check /proc/sys/kernel/perf_event_paranoid <= 2 and that "
             "the container seccomp profile allows perf_event_open)";
    close();
    return false;
  }
  opened_ = true;
  error_.clear();
  return true;
}

void PerfCounterGroup::close() {
  for (int& fd : fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  opened_ = false;
}

PerfCounterValues PerfCounterGroup::read() const {
  PerfCounterValues v;
  if (!opened_) return v;
  v.cycles = read_scaled(fds_[0]);
  v.instructions = read_scaled(fds_[1]);
  v.llc_loads = read_scaled(fds_[2]);
  v.llc_misses = read_scaled(fds_[3]);
  v.l1d_misses = read_scaled(fds_[4]);
  v.dtlb_misses = read_scaled(fds_[5]);
  v.available = true;
  return v;
}

#else  // !__linux__

bool PerfCounterGroup::open() {
  error_ = "perf_event_open is Linux-only; hardware counters unavailable "
           "on this platform";
  return false;
}

void PerfCounterGroup::close() { opened_ = false; }

PerfCounterValues PerfCounterGroup::read() const { return {}; }

#endif  // __linux__

PerfCounterGroup::~PerfCounterGroup() { close(); }

namespace perf {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_available{false};
std::atomic<bool> g_forced_unavailable{false};
std::atomic<PhaseScope*> g_phase{nullptr};
std::mutex g_reason_mutex;
std::string g_reason =
    "hardware-counter profiling not enabled (telemetry::perf::enable())";

void set_reason(const std::string& reason) {
  std::lock_guard<std::mutex> lock(g_reason_mutex);
  g_reason = reason;
}

/// The calling thread's lazily opened counter group. Opened once per
/// thread; stays open (fds close on thread exit) so enable/disable cycles
/// don't churn syscalls.
PerfCounterGroup* thread_group() {
  thread_local PerfCounterGroup group;
  thread_local bool attempted = false;
  if (!attempted) {
    attempted = true;
    group.open();
  }
  return group.is_open() ? &group : nullptr;
}

}  // namespace

bool enable() {
  if (g_forced_unavailable.load(std::memory_order_relaxed)) {
    g_enabled.store(true, std::memory_order_relaxed);
    g_available.store(false, std::memory_order_relaxed);
    return false;
  }
  g_enabled.store(true, std::memory_order_relaxed);
  // Probe on this thread; workers that individually fail later just report
  // unavailable snapshots.
  if (thread_group()) {
    g_available.store(true, std::memory_order_relaxed);
    return true;
  }
  PerfCounterGroup scratch;
  scratch.open();
  set_reason(scratch.error().empty()
                 ? "perf_event_open failed on the probing thread"
                 : scratch.error());
  g_available.store(false, std::memory_order_relaxed);
  return false;
}

void disable() { g_enabled.store(false, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

bool available() {
  return enabled() && g_available.load(std::memory_order_relaxed);
}

std::string unavailable_reason() {
  std::lock_guard<std::mutex> lock(g_reason_mutex);
  return g_reason;
}

void force_unavailable(const std::string& reason) {
  g_forced_unavailable.store(true, std::memory_order_relaxed);
  g_available.store(false, std::memory_order_relaxed);
  set_reason(reason);
}

void clear_forced_unavailable() {
  g_forced_unavailable.store(false, std::memory_order_relaxed);
}

PerfCounterValues snapshot_this_thread() {
  if (!available()) return {};
  PerfCounterGroup* group = thread_group();
  if (!group) return {};
  return group->read();
}

bool capture_armed() {
  return available() && g_phase.load(std::memory_order_acquire) != nullptr;
}

void accumulate_job_delta(const PerfCounterValues& delta) {
  if (!delta.available) return;
  PhaseScope* scope = g_phase.load(std::memory_order_acquire);
  if (!scope || !scope->reg_) return;
  scope->reg_->add_hw(scope->path_, delta);
}

PhaseScope::PhaseScope(MetricsRegistry* reg, std::string path)
    : reg_(reg), path_(std::move(path)) {
  prev_ = g_phase.exchange(this, std::memory_order_acq_rel);
}

PhaseScope::~PhaseScope() {
  g_phase.store(prev_, std::memory_order_release);
}

}  // namespace perf

}  // namespace ihtl::telemetry
