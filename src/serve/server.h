// TCP query server: accept loop, per-connection handlers, result cache,
// and the telemetry surface behind the `stats` / `metrics` ops and the
// periodic metrics dump.
//
// Request lifecycle observability: every accepted frame gets a monotone
// request id and a RequestContext that rides the whole pipeline — parse,
// admission-queue wait, batch flush, cache, serialize — collecting one
// latency per phase into the per-op-class histograms (RequestPhaseStats).
// With a TraceBuffer active, the id is also a Chrome trace flow: "s" at
// accept on the handler thread, "t" on the dispatch thread and on every
// pool worker that computed for it, "f" after the response hits the wire.
// Slow requests (past --slow-request-us) land in the EventLog with their
// phase breakdown; the Watchdog turns queue depth, deadline misses, cache
// hit-rate collapse and shard imbalance into edge-triggered alert counters.
//
// Thread map (see ARCHITECTURE.md for the ownership diagram):
//   accept thread   — blocks in accept(), spawns one handler per client
//   handler threads — parse frames, consult the cache, submit() to the
//                     batcher (blocking), write responses
//   dispatch thread — owned by the Batcher; the ONLY caller of the
//                     GraphSession compute methods
// stop() closes the listener and every live connection fd, joins all
// threads, then drains the batcher — so a stopped server has answered or
// error-replied every accepted frame.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.h"
#include "serve/phase_stats.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "serve/session.h"
#include "serve/watchdog.h"
#include "telemetry/event_log.h"
#include "telemetry/histogram.h"
#include "telemetry/metrics.h"
#include "telemetry/request_context.h"

namespace ihtl::serve {

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral, read back via port()
  std::size_t max_lanes = 8;
  std::chrono::microseconds max_batch_delay{200};
  std::size_t cache_bytes = 64u << 20;
  FlushFault fault;
  /// Requests whose wire latency exceeds this land in the event log as a
  /// "slow_request" entry with the full phase breakdown; 0 disables.
  std::uint64_t slow_request_us = 0;
  std::size_t event_log_capacity = 1024;
  std::string event_log_path;  ///< JSON-lines sink; empty = ring only
  WatchdogOptions watchdog;    ///< max_delay_ns is overridden from
                               ///< max_batch_delay at construction
};

class Server {
 public:
  /// Binds 127.0.0.1:port and starts the accept loop. The session must
  /// outlive the server. Throws on bind failure.
  Server(GraphSession& session, const ServerOptions& opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves an ephemeral request).
  std::uint16_t port() const { return port_; }

  /// Blocks until a client sends {"op": "shutdown"} or stop() is called.
  void wait();

  /// Stops accepting, closes live connections, drains the batcher. Safe to
  /// call from any thread and repeatedly.
  void stop();

  bool running() const { return !stopped_.load(std::memory_order_acquire); }

  /// Requests served (compute ops only; stats/bump-epoch excluded).
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// The server-local registry: engine spans land here at compute time;
  /// refresh_gauges() folds in the absolute cache/batcher/latency state.
  telemetry::MetricsRegistry& metrics() { return metrics_; }

  /// Per-op-class request-phase latency histograms (queue / compute /
  /// cache / serialize / total).
  const RequestPhaseStats& phase_stats() const { return phase_stats_; }
  /// Slow-request captures, watchdog trips, lifecycle events.
  telemetry::EventLog& event_log() { return event_log_; }
  const Watchdog& watchdog() const { return watchdog_; }

  /// Requests accepted (every frame, parse failures included) — the
  /// monotone request-id high-water mark.
  std::uint64_t requests_accepted() const {
    return next_request_id_.load(std::memory_order_relaxed);
  }

  /// The Prometheus text exposition behind the `metrics` op: every
  /// registry counter/gauge/span plus the per-op-class phase histograms.
  std::string metrics_exposition();

  /// Re-exports cache, batcher, and latency-histogram gauges — called
  /// before every /stats response and metrics dump; idempotent.
  void refresh_gauges();

  /// Writes a metrics snapshot JSON (make_report schema, "serve" section
  /// included) to `path` atomically.
  void dump_metrics(const std::string& path);

 private:
  void accept_loop();
  void handle_connection(int fd);
  telemetry::JsonValue handle_request(const QueryRequest& req,
                                      telemetry::RequestContext& ctx);
  /// Folds a finished request into the phase histograms, the watchdog,
  /// and (past the slow threshold) the event log.
  void finish_request(QueryOp op, const telemetry::RequestContext& ctx);
  telemetry::JsonValue stats_json();

  GraphSession& session_;
  ServerOptions opt_;
  telemetry::MetricsRegistry metrics_;
  ResultCache cache_;
  RequestPhaseStats phase_stats_;
  telemetry::EventLog event_log_;
  Watchdog watchdog_;
  std::unique_ptr<Batcher> batcher_;
  std::atomic<std::uint64_t> next_request_id_{0};

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> requests_served_{0};

  std::mutex conn_mutex_;
  std::vector<int> conn_fds_;  ///< live connection fds, for stop()
  std::vector<std::thread> handlers_;
  std::thread accept_thread_;

  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;
  std::mutex stop_mutex_;
  bool stop_complete_ = false;  ///< guarded by stop_mutex_

  // Pre-resolved event-time counters (cheap increments on the hot path;
  // the absolute gauges come from refresh_gauges instead).
  telemetry::Counter requests_total_;
  telemetry::Counter requests_cached_;
  telemetry::Counter requests_errors_;
  telemetry::Counter updates_total_;
  telemetry::Counter updates_rejected_;
  telemetry::Counter updates_rebuilds_;
};

}  // namespace ihtl::serve
