#include "serve/result_cache.h"

#include <functional>

#include "telemetry/metrics.h"

namespace ihtl::serve {

namespace {
/// Fixed bookkeeping charged per entry on top of the value bytes, so a
/// pathological workload of thousands of tiny answers still respects the
/// budget in spirit.
constexpr std::size_t kEntryOverheadBytes = 128;
}  // namespace

ResultCache::ResultCache(std::size_t byte_budget, std::size_t num_shards)
    : byte_budget_(byte_budget) {
  if (num_shards == 0) num_shards = 1;
  shard_budget_ = byte_budget / num_shards;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::string ResultCache::full_key(const std::string& fingerprint,
                                  std::uint64_t epoch) {
  return fingerprint + "@" + std::to_string(epoch);
}

ResultCache::Value ResultCache::get(const std::string& fingerprint,
                                    std::uint64_t epoch) {
  if (!enabled()) return nullptr;
  const std::string key = full_key(fingerprint, epoch);
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ResultCache::put(const std::string& fingerprint, std::uint64_t epoch,
                      Value value) {
  if (!enabled() || !value) return;
  const std::string key = full_key(fingerprint, epoch);
  const std::size_t entry_bytes =
      value->size() * sizeof(value_t) + key.size() + kEntryOverheadBytes;
  if (entry_bytes > shard_budget_) return;  // would evict the whole shard
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.bytes += entry_bytes;
    it->second->value = std::move(value);
    it->second->bytes = entry_bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(value), entry_bytes});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += entry_bytes;
  }
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

std::uint64_t ResultCache::hits() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    total += s->hits;
  }
  return total;
}

std::uint64_t ResultCache::misses() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    total += s->misses;
  }
  return total;
}

std::uint64_t ResultCache::evictions() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    total += s->evictions;
  }
  return total;
}

std::uint64_t ResultCache::bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    total += s->bytes;
  }
  return total;
}

std::uint64_t ResultCache::entries() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    total += s->lru.size();
  }
  return total;
}

void ResultCache::export_gauges(telemetry::MetricsRegistry& reg,
                                const std::string& prefix) const {
  const auto h = static_cast<double>(hits());
  const auto m = static_cast<double>(misses());
  reg.set_gauge(prefix + ".hits", h);
  reg.set_gauge(prefix + ".misses", m);
  reg.set_gauge(prefix + ".evictions", static_cast<double>(evictions()));
  reg.set_gauge(prefix + ".bytes", static_cast<double>(bytes()));
  reg.set_gauge(prefix + ".entries", static_cast<double>(entries()));
  reg.set_gauge(prefix + ".hit_rate", h + m > 0 ? h / (h + m) : 0.0);
}

}  // namespace ihtl::serve
