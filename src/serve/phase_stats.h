// Per-op-class request-phase latency histograms.
//
// The old single `latency_` histogram answered "how slow is the server";
// these answer "WHERE did request time go, per op class": every finished
// RequestContext lands its queue / compute / cache / serialize splits plus
// the wire total into one LatencyHistogram per (op, phase). Recording is
// the histograms' wait-free fetch_add path, so every handler thread
// records concurrently; export walks the same atomics.
//
// Exports twice: as `serve.ops.<op>.<phase>.*` registry gauges for /stats
// and the JSON dumps, and as a Prometheus `ihtl_request_phase_latency_us`
// histogram series (labels op=..., phase=...) for /metrics. merged_totals()
// rebuilds the legacy whole-server view (`serve.latency.*`) by merging the
// per-op totals, so pre-existing dashboards and tests keep working.
#pragma once

#include <cstddef>
#include <string>

#include "serve/protocol.h"
#include "telemetry/histogram.h"
#include "telemetry/request_context.h"

namespace ihtl::telemetry {
class MetricsRegistry;
}  // namespace ihtl::telemetry

namespace ihtl::serve {

class RequestPhaseStats {
 public:
  static constexpr std::size_t kNumPhases = 5;
  static const char* phase_name(std::size_t p);  // queue..total

  /// Folds one finished request in. Thread-safe, wait-free.
  void record(QueryOp op, const telemetry::RequestContext& ctx);

  /// Requests recorded for `op` (total-phase count).
  std::uint64_t count(QueryOp op) const;

  const telemetry::LatencyHistogram& histogram(QueryOp op,
                                               std::size_t phase) const {
    return hist_[index(op)][phase];
  }

  /// One histogram holding every op's total-phase samples (merge of the
  /// per-op totals; built fresh per call).
  void merged_totals(telemetry::LatencyHistogram& out) const;

  /// Publishes `<prefix>.<op>.<phase>.{count,p50_us,p90_us,p99_us,max_us}`
  /// gauges for every op class that has samples; idempotent.
  void export_gauges(telemetry::MetricsRegistry& reg,
                     const std::string& prefix) const;

  /// Appends the `ihtl_request_phase_latency_us` exposition series (one
  /// labeled histogram per non-empty (op, phase)).
  void exposition(std::string& out) const;

  void reset();

 private:
  /// Dense op index; QueryOp values are contiguous from 0.
  static std::size_t index(QueryOp op) {
    return static_cast<std::size_t>(op);
  }
  static constexpr std::size_t kNumOps =
      static_cast<std::size_t>(QueryOp::shutdown) + 1;

  telemetry::LatencyHistogram hist_[kNumOps][kNumPhases];
};

}  // namespace ihtl::serve
