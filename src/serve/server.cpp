#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include "telemetry/exposition.h"
#include "telemetry/report.h"
#include "telemetry/trace.h"

namespace ihtl::serve {

using telemetry::JsonValue;

namespace {

std::uint64_t ns_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

WatchdogOptions wire_watchdog(const ServerOptions& opt) {
  WatchdogOptions w = opt.watchdog;
  w.max_delay_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          opt.max_batch_delay)
          .count());
  return w;
}

}  // namespace

Server::Server(GraphSession& session, const ServerOptions& opt)
    : session_(session),
      opt_(opt),
      cache_(opt.cache_bytes),
      event_log_(opt.event_log_capacity),
      watchdog_(wire_watchdog(opt)) {
  requests_total_ = metrics_.counter("serve.requests");
  requests_cached_ = metrics_.counter("serve.requests_cached");
  requests_errors_ = metrics_.counter("serve.requests_errors");
  updates_total_ = metrics_.counter("serve.updates");
  updates_rejected_ = metrics_.counter("serve.updates_rejected");
  updates_rebuilds_ = metrics_.counter("serve.update_rebuilds");
  // A session built without its own registry serves its engine telemetry
  // (spmv spans, per-shard gauges) through this server's registry, so the
  // `metrics` exposition shows compute internals, not just serve counters.
  session_.adopt_metrics_registry(&metrics_);
  watchdog_.set_event_log(&event_log_);
  if (!opt_.event_log_path.empty()) event_log_.open_sink(opt_.event_log_path);

  BatcherOptions bopt;
  bopt.max_lanes = opt_.max_lanes;
  bopt.max_delay = opt_.max_batch_delay;
  bopt.fault = opt_.fault;
  batcher_ = std::make_unique<Batcher>(bopt, [this](const Batcher::Group& g) {
    // Dispatch thread: one batched traversal for the whole group, then
    // slice the n×K vertex-major result back into per-request n×k arrays.
    const QueryRequest& head = g.requests.front();
    if (head.op == QueryOp::update) {
      // Update group: mutations run here because the dispatch thread is
      // the only legal caller of the session's state-touching methods.
      // Applied sequentially in arrival order, each with its own
      // try/catch, so one invalid batch cannot poison a coalesced good
      // one. Result mini-schema per request (decoded by handle_request):
      //   [ok, rebuilt, drift, inserted, removed, epoch_after]
      std::vector<std::vector<value_t>> out;
      out.reserve(g.requests.size());
      for (const QueryRequest& r : g.requests) {
        std::vector<value_t> row(6, 0.0);
        try {
          UpdateBatch batch;
          batch.insert = r.insert;
          batch.remove = r.remove;
          const UpdateStats st = session_.apply_update(batch);
          row[0] = 1.0;
          row[1] = st.rebuilt ? 1.0 : 0.0;
          row[2] = st.drift;
          row[3] = static_cast<value_t>(st.inserted);
          row[4] = static_cast<value_t>(st.removed);
        } catch (const std::exception&) {
          // row[0] stays 0: rejected, session state and epoch unchanged.
        }
        row[5] = static_cast<value_t>(session_.epoch());
        out.push_back(std::move(row));
      }
      return out;
    }
    std::vector<vid_t> sources;
    std::vector<std::uint64_t> seeds;
    for (const QueryRequest& r : g.requests) {
      if (r.op == QueryOp::spmv) {
        seeds.push_back(r.x_seed);
      } else {
        sources.insert(sources.end(), r.sources.begin(), r.sources.end());
      }
    }
    std::vector<value_t> full;
    switch (head.op) {
      case QueryOp::ppr:
        full = session_.ppr_batch(sources, head.iterations, head.damping);
        break;
      case QueryOp::bfs:
        full = session_.bfs_batch(sources);
        break;
      case QueryOp::spmv:
        full = session_.spmv_batch(seeds);
        break;
      default:
        throw std::runtime_error("non-compute op reached the batcher");
    }
    const std::size_t total = g.lanes;
    const vid_t n = session_.num_vertices();
    std::vector<std::vector<value_t>> out(g.requests.size());
    std::size_t off = 0;
    for (std::size_t i = 0; i < g.requests.size(); ++i) {
      const std::size_t k = g.requests[i].lanes();
      std::vector<value_t>& slice = out[i];
      slice.resize(static_cast<std::size_t>(n) * k);
      for (vid_t v = 0; v < n; ++v) {
        for (std::size_t lane = 0; lane < k; ++lane) {
          slice[static_cast<std::size_t>(v) * k + lane] =
              full[static_cast<std::size_t>(v) * total + off + lane];
        }
      }
      off += k;
    }
    return out;
  });

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt_.port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind 127.0.0.1:" + std::to_string(opt_.port) +
                             ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen: " + err);
  }
  {
    JsonValue fields = JsonValue::object();
    fields.set("port", static_cast<std::uint64_t>(port_));
    fields.set("shards", static_cast<std::uint64_t>(session_.num_shards()));
    fields.set("threads", static_cast<std::uint64_t>(session_.pool().size()));
    event_log_.log(telemetry::LogLevel::info, "server_started",
                   std::move(fields));
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::wait() {
  std::unique_lock<std::mutex> lock(wait_mutex_);
  wait_cv_.wait(lock, [this] {
    return stopped_.load(std::memory_order_acquire);
  });
}

void Server::stop() {
  // Serialized: concurrent stop() callers must not race on the joins. The
  // shutdown-op handler never calls stop() (it cannot join itself) — it
  // only flips stopped_ and wakes wait().
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  stopped_.store(true, std::memory_order_release);
  wait_cv_.notify_all();
  if (stop_complete_) return;
  stop_complete_ = true;
  // Closing the listener unblocks accept(); shutting down the live
  // connection fds unblocks their read_frame()s.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  if (batcher_) batcher_->stop();
  JsonValue fields = JsonValue::object();
  fields.set("requests", requests_accepted());
  event_log_.log(telemetry::LogLevel::info, "server_stopped",
                 std::move(fields));
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    if (stopped_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.push_back(fd);
    handlers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Server::handle_connection(int fd) {
  std::string payload;
  try {
    while (!stopped_.load(std::memory_order_acquire)) {
      if (!read_frame(fd, payload)) break;
      // The request is born here: id assigned at frame receipt, flow
      // started on this handler thread, and the wire-latency clock starts
      // before the parse so total_ns covers everything the client waited
      // for past the socket.
      const auto frame_start = std::chrono::steady_clock::now();
      telemetry::RequestContext ctx;
      ctx.id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
      telemetry::flow_mark(telemetry::TraceEventKind::flow_begin, ctx.id);
      JsonValue response;
      bool shutdown_requested = false;
      std::optional<QueryOp> op;
      try {
        const QueryRequest req = parse_request(JsonValue::parse(payload));
        ctx.op = op_name(req.op);
        op = req.op;
        response = handle_request(req, ctx);
        shutdown_requested = req.op == QueryOp::shutdown;
      } catch (const std::exception& e) {
        requests_errors_.inc(0);
        response = JsonValue::object();
        response.set("ok", false);
        response.set("error", std::string(e.what()));
      }
      const auto write_start = std::chrono::steady_clock::now();
      write_frame(fd, response.dump(0));
      const auto done = std::chrono::steady_clock::now();
      ctx.serialize_ns += ns_between(write_start, done);
      ctx.total_ns = ns_between(frame_start, done);
      telemetry::flow_mark(telemetry::TraceEventKind::flow_end, ctx.id);
      if (op) finish_request(*op, ctx);
      if (shutdown_requested) {
        // Acknowledged on the wire; now wake wait() so the owner runs
        // stop() — a handler thread cannot join itself.
        stopped_.store(true, std::memory_order_release);
        wait_cv_.notify_all();
        break;
      }
    }
  } catch (const std::exception&) {
    // Transport error (client vanished mid-frame): drop the connection.
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mutex_);
  std::erase(conn_fds_, fd);
}

void Server::finish_request(QueryOp op, const telemetry::RequestContext& ctx) {
  phase_stats_.record(op, ctx);
  const bool batchable = op == QueryOp::ppr || op == QueryOp::bfs ||
                         op == QueryOp::spmv || op == QueryOp::update;
  if (batchable) watchdog_.on_request(ctx.cache_hit, ctx.queue_ns);
  if (opt_.slow_request_us > 0 &&
      ctx.total_ns > opt_.slow_request_us * 1000) {
    JsonValue fields = JsonValue::object();
    fields.set("request", ctx.id);
    fields.set("op", ctx.op);
    fields.set("queue_us", static_cast<double>(ctx.queue_ns) * 1e-3);
    fields.set("compute_us", static_cast<double>(ctx.compute_ns) * 1e-3);
    fields.set("cache_us", static_cast<double>(ctx.cache_ns) * 1e-3);
    fields.set("serialize_us", static_cast<double>(ctx.serialize_ns) * 1e-3);
    fields.set("total_us", static_cast<double>(ctx.total_ns) * 1e-3);
    fields.set("cached", ctx.cache_hit);
    event_log_.log(telemetry::LogLevel::warn, "slow_request",
                   std::move(fields));
  }
}

JsonValue Server::handle_request(const QueryRequest& req,
                                 telemetry::RequestContext& ctx) {
  JsonValue response = JsonValue::object();
  if (req.op == QueryOp::stats) {
    response.set("ok", true);
    response.set("epoch", session_.epoch());
    response.set("stats", stats_json());
    return response;
  }
  if (req.op == QueryOp::metrics) {
    response.set("ok", true);
    response.set("epoch", session_.epoch());
    response.set("metrics", metrics_exposition());
    return response;
  }
  if (req.op == QueryOp::bump_epoch) {
    session_.bump_epoch();
    response.set("ok", true);
    response.set("epoch", session_.epoch());
    return response;
  }
  if (req.op == QueryOp::shutdown) {
    // The caller (handle_connection) signals the stop AFTER writing this
    // response, so the acknowledging frame cannot be cut off by stop()
    // closing the connection fds.
    response.set("ok", true);
    return response;
  }
  if (req.op == QueryOp::update) {
    // Routed through the batcher like compute, so the mutation runs on the
    // dispatch thread — serialized against every traversal. Never cached;
    // the epoch bump inside apply_update is what invalidates the cache.
    watchdog_.on_admission(batcher_->queue_depth());
    const std::vector<value_t> row = batcher_->submit(req, &ctx);
    updates_total_.inc(0);
    if (row.size() != 6 || row[0] == 0.0) {
      updates_rejected_.inc(0);
      response.set("ok", false);
      response.set("error",
                   "update rejected: invalid batch (endpoint out of range "
                   "or remove of a missing edge); state unchanged");
      return response;
    }
    if (row[1] != 0.0) updates_rebuilds_.inc(0);
    response.set("ok", true);
    response.set("epoch", static_cast<std::uint64_t>(row[5]));
    response.set("rebuilt", row[1] != 0.0);
    response.set("drift", row[2]);
    response.set("inserted", static_cast<std::uint64_t>(row[3]));
    response.set("removed", static_cast<std::uint64_t>(row[4]));
    return response;
  }

  // The epoch is read ONCE per request: a bump that lands mid-compute
  // keys both the lookup and the insert to the pre-bump graph state.
  const std::uint64_t epoch = session_.epoch();
  const std::string key = fingerprint(req);
  bool cached = false;
  ResultCache::Value values;
  const auto lookup_start = std::chrono::steady_clock::now();
  if (req.use_cache) values = cache_.get(key, epoch);
  ctx.cache_ns += ns_between(lookup_start, std::chrono::steady_clock::now());
  if (values) {
    cached = true;
  } else {
    watchdog_.on_admission(batcher_->queue_depth());
    values = std::make_shared<const std::vector<value_t>>(
        batcher_->submit(req, &ctx));
    // Put BEFORE responding: a client that re-sends the same query after
    // reading this response is guaranteed to hit.
    const auto put_start = std::chrono::steady_clock::now();
    if (req.use_cache) cache_.put(key, epoch, values);
    ctx.cache_ns += ns_between(put_start, std::chrono::steady_clock::now());
  }
  ctx.cache_hit = cached;
  requests_total_.inc(0);
  if (cached) requests_cached_.inc(0);
  requests_served_.fetch_add(1, std::memory_order_relaxed);

  response.set("ok", true);
  response.set("epoch", epoch);
  response.set("cached", cached);
  // Building the values array is serialize work — it dominates the JSON
  // dump for large results, so it belongs in the same phase bucket.
  const auto ser_start = std::chrono::steady_clock::now();
  JsonValue arr = JsonValue::array();
  for (const value_t v : *values) arr.push_back(v);
  response.set("values", std::move(arr));
  ctx.serialize_ns += ns_between(ser_start, std::chrono::steady_clock::now());
  return response;
}

void Server::refresh_gauges() {
  cache_.export_gauges(metrics_, "serve.cache");
  batcher_->export_gauges(metrics_, "serve.batch");
  // The legacy whole-server latency view is the merge of the per-op-class
  // totals, so dashboards reading serve.latency.* keep working unchanged.
  telemetry::LatencyHistogram merged;
  phase_stats_.merged_totals(merged);
  merged.export_gauges(metrics_, "serve.latency");
  phase_stats_.export_gauges(metrics_, "serve.ops");
  watchdog_.on_imbalance(session_.shard_imbalance());
  watchdog_.export_gauges(metrics_, "serve.watchdog");
  metrics_.set_gauge("serve.requests_accepted",
                     static_cast<double>(requests_accepted()));
  metrics_.set_gauge("serve.shards",
                     static_cast<double>(session_.num_shards()));
  metrics_.set_gauge("serve.shard_imbalance", session_.shard_imbalance());
  metrics_.set_gauge("serve.eventlog.recorded",
                     static_cast<double>(event_log_.recorded()));
  metrics_.set_gauge("serve.eventlog.dropped",
                     static_cast<double>(event_log_.dropped()));
  metrics_.set_gauge("serve.threads",
                     static_cast<double>(session_.pool().size()));
  metrics_.set_gauge("serve.epoch", static_cast<double>(session_.epoch()));
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    metrics_.set_gauge("serve.connections",
                       static_cast<double>(conn_fds_.size()));
  }
}

std::string Server::metrics_exposition() {
  refresh_gauges();
  std::string text = telemetry::registry_exposition(metrics_, "ihtl");
  phase_stats_.exposition(text);
  return text;
}

JsonValue Server::stats_json() {
  refresh_gauges();
  return telemetry::metrics_to_json(metrics_);
}

void Server::dump_metrics(const std::string& path) {
  refresh_gauges();
  JsonValue run = JsonValue::object();
  run.set("tool", "ihtl_serve");
  run.set("port", static_cast<std::uint64_t>(port_));
  run.set("requests", requests_served());
  JsonValue graph = JsonValue::object();
  graph.set("vertices", static_cast<std::uint64_t>(session_.num_vertices()));
  graph.set("hubs",
            static_cast<std::uint64_t>(session_.ihtl_graph().num_hubs()));
  telemetry::write_json_file(
      telemetry::make_report(metrics_, std::move(run), std::move(graph),
                             JsonValue()),
      path);
}

}  // namespace ihtl::serve
