#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "telemetry/report.h"

namespace ihtl::serve {

using telemetry::JsonValue;

Server::Server(GraphSession& session, const ServerOptions& opt)
    : session_(session), opt_(opt), cache_(opt.cache_bytes) {
  requests_total_ = metrics_.counter("serve.requests");
  requests_cached_ = metrics_.counter("serve.requests_cached");
  requests_errors_ = metrics_.counter("serve.requests_errors");
  updates_total_ = metrics_.counter("serve.updates");
  updates_rejected_ = metrics_.counter("serve.updates_rejected");
  updates_rebuilds_ = metrics_.counter("serve.update_rebuilds");

  BatcherOptions bopt;
  bopt.max_lanes = opt_.max_lanes;
  bopt.max_delay = opt_.max_batch_delay;
  bopt.fault = opt_.fault;
  batcher_ = std::make_unique<Batcher>(bopt, [this](const Batcher::Group& g) {
    // Dispatch thread: one batched traversal for the whole group, then
    // slice the n×K vertex-major result back into per-request n×k arrays.
    const QueryRequest& head = g.requests.front();
    if (head.op == QueryOp::update) {
      // Update group: mutations run here because the dispatch thread is
      // the only legal caller of the session's state-touching methods.
      // Applied sequentially in arrival order, each with its own
      // try/catch, so one invalid batch cannot poison a coalesced good
      // one. Result mini-schema per request (decoded by handle_request):
      //   [ok, rebuilt, drift, inserted, removed, epoch_after]
      std::vector<std::vector<value_t>> out;
      out.reserve(g.requests.size());
      for (const QueryRequest& r : g.requests) {
        std::vector<value_t> row(6, 0.0);
        try {
          UpdateBatch batch;
          batch.insert = r.insert;
          batch.remove = r.remove;
          const UpdateStats st = session_.apply_update(batch);
          row[0] = 1.0;
          row[1] = st.rebuilt ? 1.0 : 0.0;
          row[2] = st.drift;
          row[3] = static_cast<value_t>(st.inserted);
          row[4] = static_cast<value_t>(st.removed);
        } catch (const std::exception&) {
          // row[0] stays 0: rejected, session state and epoch unchanged.
        }
        row[5] = static_cast<value_t>(session_.epoch());
        out.push_back(std::move(row));
      }
      return out;
    }
    std::vector<vid_t> sources;
    std::vector<std::uint64_t> seeds;
    for (const QueryRequest& r : g.requests) {
      if (r.op == QueryOp::spmv) {
        seeds.push_back(r.x_seed);
      } else {
        sources.insert(sources.end(), r.sources.begin(), r.sources.end());
      }
    }
    std::vector<value_t> full;
    switch (head.op) {
      case QueryOp::ppr:
        full = session_.ppr_batch(sources, head.iterations, head.damping);
        break;
      case QueryOp::bfs:
        full = session_.bfs_batch(sources);
        break;
      case QueryOp::spmv:
        full = session_.spmv_batch(seeds);
        break;
      default:
        throw std::runtime_error("non-compute op reached the batcher");
    }
    const std::size_t total = g.lanes;
    const vid_t n = session_.num_vertices();
    std::vector<std::vector<value_t>> out(g.requests.size());
    std::size_t off = 0;
    for (std::size_t i = 0; i < g.requests.size(); ++i) {
      const std::size_t k = g.requests[i].lanes();
      std::vector<value_t>& slice = out[i];
      slice.resize(static_cast<std::size_t>(n) * k);
      for (vid_t v = 0; v < n; ++v) {
        for (std::size_t lane = 0; lane < k; ++lane) {
          slice[static_cast<std::size_t>(v) * k + lane] =
              full[static_cast<std::size_t>(v) * total + off + lane];
        }
      }
      off += k;
    }
    return out;
  });

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt_.port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind 127.0.0.1:" + std::to_string(opt_.port) +
                             ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen: " + err);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::wait() {
  std::unique_lock<std::mutex> lock(wait_mutex_);
  wait_cv_.wait(lock, [this] {
    return stopped_.load(std::memory_order_acquire);
  });
}

void Server::stop() {
  // Serialized: concurrent stop() callers must not race on the joins. The
  // shutdown-op handler never calls stop() (it cannot join itself) — it
  // only flips stopped_ and wakes wait().
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  stopped_.store(true, std::memory_order_release);
  wait_cv_.notify_all();
  if (stop_complete_) return;
  stop_complete_ = true;
  // Closing the listener unblocks accept(); shutting down the live
  // connection fds unblocks their read_frame()s.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  if (batcher_) batcher_->stop();
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    if (stopped_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.push_back(fd);
    handlers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Server::handle_connection(int fd) {
  std::string payload;
  try {
    while (!stopped_.load(std::memory_order_acquire)) {
      if (!read_frame(fd, payload)) break;
      JsonValue response;
      bool shutdown_requested = false;
      try {
        const QueryRequest req = parse_request(JsonValue::parse(payload));
        response = handle_request(req);
        shutdown_requested = req.op == QueryOp::shutdown;
      } catch (const std::exception& e) {
        requests_errors_.inc(0);
        response = JsonValue::object();
        response.set("ok", false);
        response.set("error", std::string(e.what()));
      }
      write_frame(fd, response.dump(0));
      if (shutdown_requested) {
        // Acknowledged on the wire; now wake wait() so the owner runs
        // stop() — a handler thread cannot join itself.
        stopped_.store(true, std::memory_order_release);
        wait_cv_.notify_all();
        break;
      }
    }
  } catch (const std::exception&) {
    // Transport error (client vanished mid-frame): drop the connection.
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mutex_);
  std::erase(conn_fds_, fd);
}

JsonValue Server::handle_request(const QueryRequest& req) {
  JsonValue response = JsonValue::object();
  if (req.op == QueryOp::stats) {
    response.set("ok", true);
    response.set("epoch", session_.epoch());
    response.set("stats", stats_json());
    return response;
  }
  if (req.op == QueryOp::bump_epoch) {
    session_.bump_epoch();
    response.set("ok", true);
    response.set("epoch", session_.epoch());
    return response;
  }
  if (req.op == QueryOp::shutdown) {
    // The caller (handle_connection) signals the stop AFTER writing this
    // response, so the acknowledging frame cannot be cut off by stop()
    // closing the connection fds.
    response.set("ok", true);
    return response;
  }
  if (req.op == QueryOp::update) {
    // Routed through the batcher like compute, so the mutation runs on the
    // dispatch thread — serialized against every traversal. Never cached;
    // the epoch bump inside apply_update is what invalidates the cache.
    const std::vector<value_t> row = batcher_->submit(req);
    updates_total_.inc(0);
    if (row.size() != 6 || row[0] == 0.0) {
      updates_rejected_.inc(0);
      response.set("ok", false);
      response.set("error",
                   "update rejected: invalid batch (endpoint out of range "
                   "or remove of a missing edge); state unchanged");
      return response;
    }
    if (row[1] != 0.0) updates_rebuilds_.inc(0);
    response.set("ok", true);
    response.set("epoch", static_cast<std::uint64_t>(row[5]));
    response.set("rebuilt", row[1] != 0.0);
    response.set("drift", row[2]);
    response.set("inserted", static_cast<std::uint64_t>(row[3]));
    response.set("removed", static_cast<std::uint64_t>(row[4]));
    return response;
  }

  const auto start = std::chrono::steady_clock::now();
  // The epoch is read ONCE per request: a bump that lands mid-compute
  // keys both the lookup and the insert to the pre-bump graph state.
  const std::uint64_t epoch = session_.epoch();
  const std::string key = fingerprint(req);
  bool cached = false;
  ResultCache::Value values;
  if (req.use_cache) values = cache_.get(key, epoch);
  if (values) {
    cached = true;
  } else {
    values = std::make_shared<const std::vector<value_t>>(
        batcher_->submit(req));
    // Put BEFORE responding: a client that re-sends the same query after
    // reading this response is guaranteed to hit.
    if (req.use_cache) cache_.put(key, epoch, values);
  }
  requests_total_.inc(0);
  if (cached) requests_cached_.inc(0);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  latency_.record_ns(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));

  response.set("ok", true);
  response.set("epoch", epoch);
  response.set("cached", cached);
  JsonValue arr = JsonValue::array();
  for (const value_t v : *values) arr.push_back(v);
  response.set("values", std::move(arr));
  return response;
}

void Server::refresh_gauges() {
  cache_.export_gauges(metrics_, "serve.cache");
  batcher_->export_gauges(metrics_, "serve.batch");
  latency_.export_gauges(metrics_, "serve.latency");
  metrics_.set_gauge("serve.threads",
                     static_cast<double>(session_.pool().size()));
  metrics_.set_gauge("serve.epoch", static_cast<double>(session_.epoch()));
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    metrics_.set_gauge("serve.connections",
                       static_cast<double>(conn_fds_.size()));
  }
}

JsonValue Server::stats_json() {
  refresh_gauges();
  return telemetry::metrics_to_json(metrics_);
}

void Server::dump_metrics(const std::string& path) {
  refresh_gauges();
  JsonValue run = JsonValue::object();
  run.set("tool", "ihtl_serve");
  run.set("port", static_cast<std::uint64_t>(port_));
  run.set("requests", requests_served());
  JsonValue graph = JsonValue::object();
  graph.set("vertices", static_cast<std::uint64_t>(session_.num_vertices()));
  graph.set("hubs",
            static_cast<std::uint64_t>(session_.ihtl_graph().num_hubs()));
  telemetry::write_json_file(
      telemetry::make_report(metrics_, std::move(run), std::move(graph),
                             JsonValue()),
      path);
}

}  // namespace ihtl::serve
