// Sharded LRU result cache keyed on (query fingerprint, graph epoch).
//
// Hub-heavy graphs concentrate query traffic the same way they concentrate
// edges: popular sources repeat, so a served answer is worth keeping. Keys
// carry the graph epoch, so invalidation after a graph mutation is one
// atomic bump — stale entries simply stop matching and age out of the LRU
// instead of requiring a synchronized sweep. Shards keep the lock a
// per-shard mutex held for a map lookup + list splice; values are shared
// immutable vectors, so a hit hands back a refcount, never a copy.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace ihtl::telemetry {
class MetricsRegistry;
}  // namespace ihtl::telemetry

namespace ihtl::serve {

class ResultCache {
 public:
  using Value = std::shared_ptr<const std::vector<value_t>>;

  /// `byte_budget` bounds the summed value-array bytes (plus per-entry key
  /// overhead) across all shards; 0 disables the cache entirely (every get
  /// misses, puts are dropped). Entries larger than one shard's budget are
  /// never admitted.
  explicit ResultCache(std::size_t byte_budget, std::size_t num_shards = 8);

  bool enabled() const { return byte_budget_ > 0; }

  /// nullptr on miss. A hit refreshes the entry's LRU position.
  Value get(const std::string& fingerprint, std::uint64_t epoch);

  /// Inserts or refreshes; evicts least-recently-used entries of the same
  /// shard until the shard fits its budget slice.
  void put(const std::string& fingerprint, std::uint64_t epoch, Value value);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  std::uint64_t bytes() const;
  std::uint64_t entries() const;

  /// Publishes absolute `<prefix>.hits/.misses/.evictions/.bytes/.entries`
  /// and `<prefix>.hit_rate` gauges — idempotent under repeated export.
  void export_gauges(telemetry::MetricsRegistry& reg,
                     const std::string& prefix) const;

 private:
  struct Entry {
    std::string key;
    Value value;
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0, misses = 0, evictions = 0;
  };

  Shard& shard_for(const std::string& key);
  static std::string full_key(const std::string& fingerprint,
                              std::uint64_t epoch);

  std::size_t byte_budget_;
  std::size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ihtl::serve
