// Wire protocol of the query server: length-prefixed JSON frames.
//
// Every message — request and response — is one frame: a 4-byte big-endian
// payload length followed by that many bytes of UTF-8 JSON. JSON keeps the
// protocol debuggable (a client is ~10 lines of python) and reuses the
// repo's own parser; the length prefix makes framing trivial over TCP.
//
// Request schema (one object per frame):
//   {"op": "ppr",  "sources": [v...], "iterations": I, "damping": D}
//   {"op": "bfs",  "sources": [v...]}
//   {"op": "spmv", "x_seed": S}        // dense x derived from the seed
//   {"op": "update", "insert": [[u,v]...], "remove": [[u,v]...]}
//   {"op": "stats"}                    // telemetry snapshot, no compute
//   {"op": "metrics"}                  // Prometheus text exposition
//   {"op": "bump-epoch"}               // invalidate the result cache
//   {"op": "shutdown"}                 // stop the server
// Optional on compute ops: "cache": false bypasses the result cache.
//
// Response schema:
//   {"ok": true, "epoch": E, "cached": B, "values": [...]}   // compute ops
//   {"ok": true, "epoch": E, "rebuilt": B, "drift": D,
//    "inserted": I, "removed": R}                            // update
//   {"ok": true, "stats": {...}}                             // stats
//   {"ok": true, "epoch": E, "metrics": "<exposition>"}      // metrics
//   {"ok": true, "epoch": E}                                 // bump-epoch
//   {"ok": false, "error": "..."}                            // any failure
// `values` is the query result in the ORIGINAL vertex-ID space, vertex-
// major n×k for k-source ppr/bfs (lane l of vertex v at v*k+l). BFS levels
// use -1 for unreachable vertices (JSON cannot carry +inf).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/types.h"
#include "telemetry/json.h"

namespace ihtl::serve {

/// Frames larger than this are a protocol error, not a allocation request.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Sources per ppr/bfs request; a request is at most this many batch lanes.
inline constexpr std::size_t kMaxSourcesPerRequest = 64;

/// Edges (insert + remove combined) one update request may carry; larger
/// streams are split into multiple requests by the client.
inline constexpr std::size_t kMaxUpdateEdgesPerRequest = 65536;

enum class QueryOp {
  ppr,
  bfs,
  spmv,
  update,
  stats,
  metrics,
  bump_epoch,
  shutdown
};

const char* op_name(QueryOp op);
std::optional<QueryOp> op_from_name(const std::string& name);

struct QueryRequest {
  QueryOp op = QueryOp::stats;
  std::vector<vid_t> sources;   ///< ppr / bfs
  unsigned iterations = 10;     ///< ppr
  double damping = 0.85;        ///< ppr
  std::uint64_t x_seed = 1;     ///< spmv
  std::vector<Edge> insert;     ///< update
  std::vector<Edge> remove;     ///< update
  bool use_cache = true;

  /// Batch lanes this request occupies in a flush.
  std::size_t lanes() const {
    return op == QueryOp::spmv || op == QueryOp::update ? 1 : sources.size();
  }
  /// True for ops that run a batched engine traversal (ppr/bfs/spmv).
  bool is_compute() const {
    return op == QueryOp::ppr || op == QueryOp::bfs || op == QueryOp::spmv;
  }
  /// True for ops the admission batcher dispatches: compute traversals
  /// plus graph mutations — both must run on the dispatch thread, which
  /// is the only legal caller of GraphSession state methods.
  bool is_batchable() const {
    return is_compute() || op == QueryOp::update;
  }
};

/// Parses a request object; throws std::runtime_error on schema violations
/// (unknown op, missing/out-of-range sources, too many lanes).
QueryRequest parse_request(const telemetry::JsonValue& doc);
telemetry::JsonValue request_to_json(const QueryRequest& req);

/// Canonical cache key of a compute request: op + every parameter that
/// affects the answer, sources/seed included. Two requests with equal
/// fingerprints (at the same graph epoch) have identical results.
std::string fingerprint(const QueryRequest& req);

/// Admission-queue class: fingerprint minus the per-lane parameters
/// (sources, x_seed). Requests in the same class can share one batched
/// traversal — each source or seed becomes one arithmetic-independent
/// lane; requests in different classes never coalesce.
std::string batch_class(const QueryRequest& req);

// --- frame I/O (blocking, over a connected socket fd) ---------------------

/// Reads one frame; false on clean EOF, throws on a short read, an
/// oversized frame, or a socket error.
bool read_frame(int fd, std::string& payload);

/// Writes one frame; throws on error. Suppresses SIGPIPE (MSG_NOSIGNAL),
/// so a client that disconnected mid-response surfaces as an exception on
/// the handler thread, not a process kill.
void write_frame(int fd, const std::string& payload);

/// Blocking loopback client used by ihtl_query, the lattice check, and the
/// tests: connect once, then round-trip frames.
class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Throws on connection failure.
  void connect(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Sends `req`, blocks for the response. Throws on transport errors; a
  /// server-side {"ok": false} is returned to the caller, not thrown.
  telemetry::JsonValue roundtrip(const telemetry::JsonValue& req);
  telemetry::JsonValue roundtrip(const QueryRequest& req) {
    return roundtrip(request_to_json(req));
  }

 private:
  int fd_ = -1;
};

}  // namespace ihtl::serve
