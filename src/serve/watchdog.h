// Serve-layer watchdog: cheap anomaly counters a dashboard can alert on.
//
// The watchdog turns raw request telemetry into four operational signals,
// each edge-triggered so a sustained bad state counts one event, not one
// per request:
//   - deadline misses: a request's admission-queue wait exceeded
//     `deadline_factor` × the batcher's max_delay — the coalescing window
//     is no longer bounding latency (overload or injected stall).
//   - queue saturation: pending lanes crossed `queue_depth_limit` from
//     below — admission is outrunning dispatch.
//   - cache hit-rate collapse: the hit rate over the last `window`
//     compute requests fell below `collapse_threshold` after having been
//     at/above `healthy_threshold` — the epoch bumped under a hot working
//     set, or the key mix changed.
//   - shard imbalance: the session's shard plan exceeds
//     `imbalance_threshold` (checked once per export, it is static
//     between updates).
//
// Trips are counted, exported as gauges, and (when a sink is wired)
// logged as warn events. on_request takes one mutex per request — the
// serve control plane, not the SpMV hot path.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ihtl::telemetry {
class EventLog;
class MetricsRegistry;
}  // namespace ihtl::telemetry

namespace ihtl::serve {

struct WatchdogOptions {
  double deadline_factor = 8.0;
  std::uint64_t max_delay_ns = 200'000;  ///< the batcher's flush deadline
  std::size_t queue_depth_limit = 64;    ///< pending lanes
  std::size_t window = 64;               ///< hit-rate sliding window
  double healthy_threshold = 0.5;
  double collapse_threshold = 0.2;
  double imbalance_threshold = 1.5;
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions opt = {});

  /// Routes trip events (level warn) to `log`; nullptr disables.
  void set_event_log(telemetry::EventLog* log) { log_ = log; }

  /// Call at admission time with the batcher's current pending lanes.
  void on_admission(std::size_t queue_depth);

  /// Call once per finished batchable request.
  void on_request(bool cache_hit, std::uint64_t queue_wait_ns);

  /// Call with the session's current shard imbalance (any time; counts one
  /// alert per excursion above the threshold).
  void on_imbalance(double imbalance);

  std::uint64_t deadline_misses() const;
  std::uint64_t saturation_events() const;
  std::uint64_t hitrate_collapses() const;
  std::uint64_t imbalance_alerts() const;
  /// Hit rate over the current window; 1.0 until the window has samples.
  double window_hit_rate() const;

  /// Publishes `<prefix>.{deadline_misses,saturation_events,
  /// hitrate_collapses,imbalance_alerts,window_hit_rate}` gauges.
  void export_gauges(telemetry::MetricsRegistry& reg,
                     const std::string& prefix) const;

 private:
  void warn(const char* event, double value);
  double hit_rate_locked() const;

  WatchdogOptions opt_;
  telemetry::EventLog* log_ = nullptr;

  mutable std::mutex mutex_;
  std::vector<bool> hits_;  ///< ring of the last `window` hit/miss bits
  std::size_t hits_next_ = 0;
  std::size_t hits_count_ = 0;
  bool saturated_ = false;
  bool collapsed_ = false;
  bool was_healthy_ = false;
  bool imbalance_alerted_ = false;
  std::uint64_t deadline_misses_ = 0;
  std::uint64_t saturation_events_ = 0;
  std::uint64_t hitrate_collapses_ = 0;
  std::uint64_t imbalance_alerts_ = 0;
};

}  // namespace ihtl::serve
