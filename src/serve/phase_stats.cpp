#include "serve/phase_stats.h"

#include "telemetry/exposition.h"
#include "telemetry/metrics.h"

namespace ihtl::serve {

namespace {
constexpr std::size_t kQueue = 0;
constexpr std::size_t kCompute = 1;
constexpr std::size_t kCache = 2;
constexpr std::size_t kSerialize = 3;
constexpr std::size_t kTotal = 4;
}  // namespace

const char* RequestPhaseStats::phase_name(std::size_t p) {
  switch (p) {
    case kQueue:
      return "queue";
    case kCompute:
      return "compute";
    case kCache:
      return "cache";
    case kSerialize:
      return "serialize";
    case kTotal:
      return "total";
  }
  return "?";
}

void RequestPhaseStats::record(QueryOp op,
                               const telemetry::RequestContext& ctx) {
  telemetry::LatencyHistogram* h = hist_[index(op)];
  h[kQueue].record_ns(ctx.queue_ns);
  h[kCompute].record_ns(ctx.compute_ns);
  h[kCache].record_ns(ctx.cache_ns);
  h[kSerialize].record_ns(ctx.serialize_ns);
  h[kTotal].record_ns(ctx.total_ns);
}

std::uint64_t RequestPhaseStats::count(QueryOp op) const {
  return hist_[index(op)][kTotal].count();
}

void RequestPhaseStats::merged_totals(
    telemetry::LatencyHistogram& out) const {
  for (std::size_t o = 0; o < kNumOps; ++o) {
    out.merge(hist_[o][kTotal]);
  }
}

void RequestPhaseStats::export_gauges(telemetry::MetricsRegistry& reg,
                                      const std::string& prefix) const {
  for (std::size_t o = 0; o < kNumOps; ++o) {
    const QueryOp op = static_cast<QueryOp>(o);
    if (count(op) == 0) continue;
    const std::string base = prefix + "." + op_name(op) + ".";
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      hist_[o][p].export_gauges(reg, base + phase_name(p));
    }
  }
}

void RequestPhaseStats::exposition(std::string& out) const {
  for (std::size_t o = 0; o < kNumOps; ++o) {
    const QueryOp op = static_cast<QueryOp>(o);
    if (count(op) == 0) continue;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      const std::string labels = std::string("op=\"") + op_name(op) +
                                 "\",phase=\"" + phase_name(p) + "\"";
      telemetry::append_histogram_exposition(
          out, "ihtl_request_phase_latency_us", labels, hist_[o][p]);
    }
  }
}

void RequestPhaseStats::reset() {
  for (std::size_t o = 0; o < kNumOps; ++o) {
    for (std::size_t p = 0; p < kNumPhases; ++p) hist_[o][p].reset();
  }
}

}  // namespace ihtl::serve
