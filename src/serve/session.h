// GraphSession: one graph, preprocessed once, served forever.
//
// The serving layer's whole premise (and the LLC-characterization argument
// in PAPERS.md) is that the expensive state — the iHTL graph, the engines'
// per-thread hub buffers, the relabeled degree array — is built once and
// stays hot across requests, instead of being rebuilt per call the way the
// one-shot app entry points do. A session owns exactly that state: the
// thread pool, a PlusMonoid engine (ppr/spmv) and a MinMonoid engine (bfs)
// over one shared IhtlGraph, plus the graph epoch that keys the result
// cache.
//
// THREADING CONTRACT: the compute methods (ppr_batch / bfs_batch /
// spmv_batch) drive ThreadPool::run and the engines' mutable buffers, so
// exactly ONE thread — the batcher's dispatch thread in the server — may
// call them. epoch()/bump_epoch() are atomic and callable from anywhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/ihtl_config.h"
#include "core/ihtl_graph.h"
#include "core/ihtl_spmv.h"
#include "core/ihtl_update.h"
#include "core/sharded_engine.h"
#include "graph/graph.h"
#include "parallel/thread_pool.h"

namespace ihtl::telemetry {
class MetricsRegistry;
}  // namespace ihtl::telemetry

namespace ihtl::serve {

struct SessionOptions {
  IhtlConfig ihtl;
  UpdateConfig update;      ///< incremental-relabel policy for apply_update
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Destination-range shards of the serving engines. 1 (default) keeps
  /// the unsharded IhtlEngine pair; >1 serves through ShardedEngine, whose
  /// per-shard thread teams and /metrics gauges are what ihtl_top's
  /// per-shard view reads.
  std::size_t shards = 1;
};

class GraphSession {
 public:
  /// Preprocesses `g` (hub selection, relabeling, flipped blocks) and
  /// builds both engines. `reg` receives the engines' spmv spans/counters;
  /// nullptr leaves them on the global registry.
  GraphSession(Graph g, const SessionOptions& opt,
               telemetry::MetricsRegistry* reg = nullptr);
  ~GraphSession();

  GraphSession(const GraphSession&) = delete;
  GraphSession& operator=(const GraphSession&) = delete;

  const Graph& graph() const { return g_; }
  const IhtlGraph& ihtl_graph() const { return ig_; }
  vid_t num_vertices() const { return g_.num_vertices(); }
  ThreadPool& pool() { return pool_; }
  double preprocess_seconds() const { return preprocess_s_; }

  /// Shards the engines serve through (1 = unsharded).
  std::size_t num_shards() const;
  /// Edge-balance of the shard plan: max shard edges over the mean
  /// (ShardedEngine::imbalance); exactly 1.0 when unsharded.
  double shard_imbalance() const;

  /// Re-points engine metrics (spmv spans, per-shard gauges) at `reg` —
  /// but only when the session was built WITHOUT a registry, so a caller
  /// that wired one explicitly is never silently overridden. The server
  /// uses this to pull the engines of a caller-constructed session onto
  /// its own registry, where /metrics and /stats can see them.
  void adopt_metrics_registry(telemetry::MetricsRegistry* reg);

  /// Cache-keying epoch; bumped by apply_update on every graph mutation to
  /// invalidate every cached answer at once.
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  void bump_epoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  /// Applies an UpdateBatch atomically: graph rebuilt via apply_update,
  /// iHTL layout patched incrementally (or rebuilt past the drift
  /// threshold), engines reconstructed over the new layout, THEN the epoch
  /// bumps — so a request keyed to the old epoch can never observe the new
  /// graph's values under the old key. Dispatch-thread-only, like the
  /// compute methods (it replaces the state they read). Throws
  /// std::invalid_argument on a bad batch with ALL state unchanged and the
  /// epoch not bumped. An empty batch is a no-op at the same epoch.
  UpdateStats apply_update(const UpdateBatch& batch);

  /// Drains the pool's workers (ThreadPool::shutdown) while the engines'
  /// buffers are still alive; compute still works afterwards, serially.
  /// Called by the destructor — the explicit ordering fix for a long-lived
  /// owner of both a pool and engine state.
  void drain();

  // --- compute (dispatch thread only) -------------------------------------
  // All results are vertex-major n×k arrays in the ORIGINAL ID space (lane
  // l of vertex v at v*k+l). Per-lane arithmetic is independent of the
  // other lanes, so a lane's answer does not depend on which requests were
  // coalesced with it (bitwise so with a 1-thread pool; see serve_check).

  /// Personalized PageRank: lane l restarts into sources[l], exactly
  /// `iterations` damped rounds (fixed count — no tolerance early-out, so
  /// batch composition cannot change a lane's answer).
  std::vector<value_t> ppr_batch(std::span<const vid_t> sources,
                                 unsigned iterations, double damping);

  /// Multi-source BFS levels; unreachable vertices get -1 (JSON-safe, see
  /// protocol.h). Rounds run until no lane improves; a lane past its own
  /// fixpoint is unaffected by extra rounds driven by deeper lanes.
  std::vector<value_t> bfs_batch(std::span<const vid_t> sources);

  /// Plain plus-SpMV, one lane per seed: lane l's input vector is the
  /// deterministic dense x derived from x_seeds[l] (see spmv_input_value).
  std::vector<value_t> spmv_batch(std::span<const std::uint64_t> x_seeds);

 private:
  /// (Re)builds deg_new_ and both engines from the current ig_; shared by
  /// the constructor and apply_update (engines bake their decomposition
  /// from the IhtlGraph at construction, so a mutated graph needs fresh
  /// ones — hence the optionals).
  void rebind_engines();
  /// Re-registers the live engines' metrics on reg_ (rebind and adopt).
  void wire_engine_metrics();

  /// Monoid dispatch over whichever engine flavor this session built
  /// (plain for shards == 1, sharded otherwise); k == 1 takes the scalar
  /// path. Dispatch-thread-only, like everything that reaches the engines.
  void plus_apply(std::span<const value_t> x, std::span<value_t> y,
                  std::size_t k);
  void min_apply(std::span<const value_t> x, std::span<value_t> y,
                 std::size_t k);

  Graph g_;
  ThreadPool pool_;
  IhtlGraph ig_;
  SessionOptions opt_;
  telemetry::MetricsRegistry* reg_ = nullptr;
  std::vector<eid_t> deg_new_;  ///< out-degrees in the relabeled space
  std::optional<IhtlEngine<PlusMonoid>> plus_engine_;
  std::optional<IhtlEngine<MinMonoid>> min_engine_;
  std::optional<ShardedEngine<PlusMonoid>> plus_sharded_;
  std::optional<ShardedEngine<MinMonoid>> min_sharded_;
  std::atomic<std::uint64_t> epoch_{0};
  double preprocess_s_ = 0.0;
  bool drained_ = false;
};

/// The deterministic dense input value of vertex `v` (original ID) under
/// seed `seed`: splitmix64 mixed to a double in [0, 1). Shared by the
/// server, the oracle, and the client tools, so a seed names one exact
/// vector everywhere.
value_t spmv_input_value(std::uint64_t seed, vid_t v);

}  // namespace ihtl::serve
