#include "serve/protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace ihtl::serve {

using telemetry::JsonValue;

const char* op_name(QueryOp op) {
  switch (op) {
    case QueryOp::ppr: return "ppr";
    case QueryOp::bfs: return "bfs";
    case QueryOp::spmv: return "spmv";
    case QueryOp::update: return "update";
    case QueryOp::stats: return "stats";
    case QueryOp::metrics: return "metrics";
    case QueryOp::bump_epoch: return "bump-epoch";
    case QueryOp::shutdown: return "shutdown";
  }
  return "unknown";
}

std::optional<QueryOp> op_from_name(const std::string& name) {
  if (name == "ppr") return QueryOp::ppr;
  if (name == "bfs") return QueryOp::bfs;
  if (name == "spmv") return QueryOp::spmv;
  if (name == "update") return QueryOp::update;
  if (name == "stats") return QueryOp::stats;
  if (name == "metrics") return QueryOp::metrics;
  if (name == "bump-epoch") return QueryOp::bump_epoch;
  if (name == "shutdown") return QueryOp::shutdown;
  return std::nullopt;
}

QueryRequest parse_request(const JsonValue& doc) {
  if (!doc.is_object()) throw std::runtime_error("request must be an object");
  const JsonValue* op = doc.find("op");
  if (!op || !op->is_string()) {
    throw std::runtime_error("request needs a string 'op'");
  }
  const std::optional<QueryOp> parsed = op_from_name(op->as_string());
  if (!parsed) throw std::runtime_error("unknown op: " + op->as_string());

  QueryRequest req;
  req.op = *parsed;
  if (req.op == QueryOp::ppr || req.op == QueryOp::bfs) {
    const JsonValue* sources = doc.find("sources");
    if (!sources || !sources->is_array() || sources->items().empty()) {
      throw std::runtime_error("op needs a non-empty 'sources' array");
    }
    if (sources->items().size() > kMaxSourcesPerRequest) {
      throw std::runtime_error("too many sources in one request");
    }
    for (const JsonValue& s : sources->items()) {
      if (!s.is_number() || s.as_number() < 0) {
        throw std::runtime_error("'sources' entries must be non-negative");
      }
      req.sources.push_back(static_cast<vid_t>(s.as_number()));
    }
  }
  if (req.op == QueryOp::ppr) {
    if (const JsonValue* it = doc.find("iterations")) {
      if (!it->is_number() || it->as_number() < 1 || it->as_number() > 1000) {
        throw std::runtime_error("'iterations' must be in [1, 1000]");
      }
      req.iterations = static_cast<unsigned>(it->as_number());
    }
    if (const JsonValue* d = doc.find("damping")) {
      if (!d->is_number() || d->as_number() <= 0.0 || d->as_number() >= 1.0) {
        throw std::runtime_error("'damping' must be in (0, 1)");
      }
      req.damping = d->as_number();
    }
  }
  if (req.op == QueryOp::spmv) {
    if (const JsonValue* s = doc.find("x_seed")) {
      if (!s->is_number() || s->as_number() < 0) {
        throw std::runtime_error("'x_seed' must be non-negative");
      }
      req.x_seed = static_cast<std::uint64_t>(s->as_number());
    }
  }
  if (req.op == QueryOp::update) {
    // Endpoint IDs are only range-checked here; validity against the
    // SERVED graph (vertex bounds, remove multiplicity) is decided on the
    // dispatch thread, where the graph state is stable.
    auto parse_edges = [&](const char* key, std::vector<Edge>& out) {
      const JsonValue* arr = doc.find(key);
      if (!arr) return;
      if (!arr->is_array()) {
        throw std::runtime_error(std::string("'") + key +
                                 "' must be an array of [src, dst] pairs");
      }
      for (const JsonValue& e : arr->items()) {
        if (!e.is_array() || e.items().size() != 2 ||
            !e.items()[0].is_number() || !e.items()[1].is_number() ||
            e.items()[0].as_number() < 0 || e.items()[1].as_number() < 0) {
          throw std::runtime_error(std::string("'") + key +
                                   "' entries must be [src, dst] pairs of "
                                   "non-negative integers");
        }
        out.push_back({static_cast<vid_t>(e.items()[0].as_number()),
                       static_cast<vid_t>(e.items()[1].as_number())});
      }
    };
    parse_edges("insert", req.insert);
    parse_edges("remove", req.remove);
    if (req.insert.size() + req.remove.size() > kMaxUpdateEdgesPerRequest) {
      throw std::runtime_error("too many edges in one update request");
    }
  }
  if (const JsonValue* c = doc.find("cache")) {
    if (!c->is_bool()) throw std::runtime_error("'cache' must be a boolean");
    req.use_cache = c->as_bool();
  }
  return req;
}

JsonValue request_to_json(const QueryRequest& req) {
  JsonValue doc = JsonValue::object();
  doc.set("op", op_name(req.op));
  if (req.op == QueryOp::ppr || req.op == QueryOp::bfs) {
    JsonValue sources = JsonValue::array();
    for (const vid_t s : req.sources) {
      sources.push_back(static_cast<std::uint64_t>(s));
    }
    doc.set("sources", std::move(sources));
  }
  if (req.op == QueryOp::ppr) {
    doc.set("iterations", static_cast<std::uint64_t>(req.iterations));
    doc.set("damping", req.damping);
  }
  if (req.op == QueryOp::spmv) doc.set("x_seed", req.x_seed);
  if (req.op == QueryOp::update) {
    auto edges_json = [](const std::vector<Edge>& edges) {
      JsonValue arr = JsonValue::array();
      for (const Edge& e : edges) {
        JsonValue pair = JsonValue::array();
        pair.push_back(static_cast<std::uint64_t>(e.src));
        pair.push_back(static_cast<std::uint64_t>(e.dst));
        arr.push_back(std::move(pair));
      }
      return arr;
    };
    if (!req.insert.empty()) doc.set("insert", edges_json(req.insert));
    if (!req.remove.empty()) doc.set("remove", edges_json(req.remove));
  }
  if (!req.use_cache) doc.set("cache", false);
  return doc;
}

std::string fingerprint(const QueryRequest& req) {
  std::ostringstream key;
  key << batch_class(req);
  if (req.op == QueryOp::ppr || req.op == QueryOp::bfs) {
    key << ":s";
    for (std::size_t i = 0; i < req.sources.size(); ++i) {
      key << (i ? "," : "") << req.sources[i];
    }
  }
  if (req.op == QueryOp::spmv) key << ":x" << req.x_seed;
  return key.str();
}

std::string batch_class(const QueryRequest& req) {
  std::ostringstream key;
  key << op_name(req.op);
  if (req.op == QueryOp::ppr) {
    key << ":i" << req.iterations << ":d" << req.damping;
  }
  return key.str();
}

namespace {

void read_exact(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<char*>(buf);
  while (len > 0) {
    const ssize_t got = ::recv(fd, p, len, 0);
    if (got == 0) throw std::runtime_error("connection closed mid-frame");
    if (got < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
    }
    p += got;
    len -= static_cast<std::size_t>(got);
  }
}

void write_exact(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const char*>(buf);
  while (len > 0) {
    const ssize_t put = ::send(fd, p, len, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send: ") + std::strerror(errno));
    }
    p += put;
    len -= static_cast<std::size_t>(put);
  }
}

}  // namespace

bool read_frame(int fd, std::string& payload) {
  unsigned char header[4];
  // A clean EOF (or a reset) before any header byte means "no more
  // requests", not an error; mid-header EOF is a truncated frame.
  const ssize_t first = ::recv(fd, header, 1, 0);
  if (first == 0) return false;
  if (first < 0) {
    if (errno == ECONNRESET) return false;
    throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
  }
  read_exact(fd, header + 1, 3);
  const std::uint32_t len = (std::uint32_t{header[0]} << 24) |
                            (std::uint32_t{header[1]} << 16) |
                            (std::uint32_t{header[2]} << 8) |
                            std::uint32_t{header[3]};
  if (len > kMaxFrameBytes) throw std::runtime_error("oversized frame");
  payload.resize(len);
  if (len > 0) read_exact(fd, payload.data(), len);
  return true;
}

void write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::runtime_error("oversized frame");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(len >> 24),
      static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 8),
      static_cast<unsigned char>(len),
  };
  write_exact(fd, header, sizeof(header));
  if (len > 0) write_exact(fd, payload.data(), payload.size());
}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    close();
    throw std::runtime_error("connect " + host + ":" + std::to_string(port) +
                             ": " + err);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

JsonValue Client::roundtrip(const JsonValue& req) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  write_frame(fd_, req.dump(0));
  std::string payload;
  if (!read_frame(fd_, payload)) {
    throw std::runtime_error("server closed the connection");
  }
  return JsonValue::parse(payload);
}

}  // namespace ihtl::serve
