#include "serve/batcher.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "telemetry/metrics.h"
#include "telemetry/request_context.h"
#include "telemetry/trace.h"

namespace ihtl::serve {

Batcher::Batcher(BatcherOptions opt, ComputeFn compute)
    : opt_(std::move(opt)), compute_(std::move(compute)) {
  if (opt_.max_lanes == 0) opt_.max_lanes = 1;
  drops_remaining_ = opt_.fault.drop_flushes;
  dispatch_ = std::thread([this] { dispatch_loop(); });
}

Batcher::~Batcher() { stop(); }

std::vector<value_t> Batcher::submit(const QueryRequest& req,
                                     telemetry::RequestContext* ctx) {
  if (!req.is_batchable() || req.lanes() == 0) {
    throw std::runtime_error("batcher only accepts compute requests");
  }
  std::future<std::vector<value_t>> future;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::runtime_error("batcher is stopped");
    ClassQueue& q = queues_[batch_class(req)];
    Pending p;
    p.request = req;
    p.enqueued = Clock::now();
    p.ctx = ctx;
    future = p.promise.get_future();
    q.lanes += req.lanes();
    total_lanes_ += req.lanes();
    q.pending.push_back(std::move(p));
  }
  wake_dispatch_.notify_one();
  return future.get();
}

void Batcher::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    // The drain must terminate: faults stop applying once we are stopping.
    drops_remaining_ = 0;
  }
  wake_dispatch_.notify_one();
  if (dispatch_.joinable()) dispatch_.join();
}

std::size_t Batcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_lanes_;
}

void Batcher::export_gauges(telemetry::MetricsRegistry& reg,
                            const std::string& prefix) const {
  reg.set_gauge(prefix + ".flushes", static_cast<double>(flushes_));
  reg.set_gauge(prefix + ".full_flushes", static_cast<double>(full_flushes_));
  reg.set_gauge(prefix + ".deadline_flushes",
                static_cast<double>(deadline_flushes_));
  reg.set_gauge(prefix + ".dropped_flushes",
                static_cast<double>(dropped_flushes_));
  reg.set_gauge(prefix + ".lanes_flushed",
                static_cast<double>(lanes_flushed_));
  reg.set_gauge(prefix + ".lane_occupancy", mean_lane_occupancy());
  reg.set_gauge(prefix + ".queue_depth",
                static_cast<double>(queue_depth()));
}

bool Batcher::pop_group(std::unique_lock<std::mutex>& /*lock*/,
                        Clock::time_point now, std::string& cls,
                        std::vector<Pending>& out, bool& was_full) {
  // Prefer a full class; otherwise the class whose OLDEST request has
  // expired its deadline. When stopping, everything is due immediately.
  const std::map<std::string, ClassQueue>::iterator end = queues_.end();
  auto chosen = end;
  bool full = false;
  for (auto it = queues_.begin(); it != end; ++it) {
    if (it->second.pending.empty()) continue;
    const bool is_full =
        it->second.lanes >= opt_.max_lanes ||
        it->second.pending.front().request.lanes() >= opt_.max_lanes;
    const bool due =
        stopping_ ||
        now - it->second.pending.front().enqueued >= opt_.max_delay;
    if (is_full) {
      chosen = it;
      full = true;
      break;
    }
    if (due && chosen == end) chosen = it;
  }
  if (chosen == end) return false;

  // Take requests in arrival order until the next one would overflow
  // max_lanes. A single request wider than max_lanes flushes alone (it
  // can't share a traversal, but it must not starve either).
  ClassQueue& q = chosen->second;
  std::size_t lanes = 0;
  while (!q.pending.empty()) {
    const std::size_t next = q.pending.front().request.lanes();
    if (!out.empty() && lanes + next > opt_.max_lanes) break;
    lanes += next;
    out.push_back(std::move(q.pending.front()));
    q.pending.pop_front();
    if (lanes >= opt_.max_lanes) break;
  }
  q.lanes -= lanes;
  total_lanes_ -= lanes;
  cls = chosen->first;
  if (q.pending.empty()) queues_.erase(chosen);
  was_full = full;
  return true;
}

void Batcher::run_group(std::vector<Pending> group, bool was_full) {
  Group g;
  g.requests.reserve(group.size());
  // Every traced request banks its queue wait now (flush start ends the
  // queue phase — the injected fault delay, by design, counts as queueing)
  // and lands a flow_step on the dispatch thread; the first traced request
  // becomes the active flow so pool workers stamp the traversal too.
  const Clock::time_point flush_start = Clock::now();
  std::uint64_t head_flow = 0;
  for (const Pending& p : group) {
    g.lanes += p.request.lanes();
    g.requests.push_back(p.request);
    if (p.ctx != nullptr) {
      p.ctx->queue_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(flush_start -
                                                               p.enqueued)
              .count());
      telemetry::flow_mark(telemetry::TraceEventKind::flow_step, p.ctx->id);
      if (head_flow == 0) head_flow = p.ctx->id;
    }
  }
  ++flushes_;
  lanes_flushed_ += g.lanes;
  if (was_full) {
    ++full_flushes_;
  } else {
    ++deadline_flushes_;
  }
  try {
    if (head_flow != 0) telemetry::set_active_flow(head_flow);
    // Null-registry span: no metrics, but the flush becomes a timeline
    // slice on the dispatch thread for the flow arrows to pass through.
    telemetry::ScopedSpan flush_span(nullptr, "serve/flush");
    std::vector<std::vector<value_t>> results = compute_(g);
    const double compute_s = flush_span.stop();
    if (head_flow != 0) telemetry::set_active_flow(0);
    const auto compute_ns =
        static_cast<std::uint64_t>(compute_s >= 0 ? compute_s * 1e9 : 0);
    for (Pending& p : group) {
      if (p.ctx != nullptr) p.ctx->compute_ns = compute_ns;
    }
    if (results.size() != group.size()) {
      throw std::runtime_error("compute returned wrong result count");
    }
    for (std::size_t i = 0; i < group.size(); ++i) {
      group[i].promise.set_value(std::move(results[i]));
    }
  } catch (...) {
    if (head_flow != 0) telemetry::set_active_flow(0);
    for (Pending& p : group) {
      p.promise.set_exception(std::current_exception());
    }
  }
}

void Batcher::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  flushes_ = 0;
  full_flushes_ = 0;
  deadline_flushes_ = 0;
  dropped_flushes_ = 0;
  lanes_flushed_ = 0;
}

void Batcher::dispatch_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Wake when: something is enqueued, the nearest deadline expires, or
    // stop() is requested. With an empty queue, sleep indefinitely.
    if (total_lanes_ == 0) {
      if (stopping_) return;
      wake_dispatch_.wait(lock, [this] {
        return total_lanes_ > 0 || stopping_;
      });
      continue;
    }
    const Clock::time_point now = Clock::now();
    std::string cls;
    std::vector<Pending> group;
    bool was_full = false;
    if (!pop_group(lock, now, cls, group, was_full)) {
      Clock::time_point nearest = Clock::time_point::max();
      for (const auto& [name, q] : queues_) {
        if (q.pending.empty()) continue;
        nearest = std::min(nearest, q.pending.front().enqueued +
                                        opt_.max_delay);
      }
      wake_dispatch_.wait_until(lock, nearest);
      continue;
    }

    // Fault injection (lattice check only): drop re-queues the group at
    // the FRONT in arrival order, so a later wakeup retries it; delay
    // stalls the flush past its deadline.
    if (drops_remaining_ > 0) {
      --drops_remaining_;
      ++dropped_flushes_;
      ClassQueue& q = queues_[cls];
      for (auto it = group.rbegin(); it != group.rend(); ++it) {
        q.lanes += it->request.lanes();
        total_lanes_ += it->request.lanes();
        q.pending.push_front(std::move(*it));
      }
      // Without the sleep a zero-delay drop would respin immediately on
      // the still-due group; yield the deadline once.
      lock.unlock();
      std::this_thread::sleep_for(opt_.max_delay);
      lock.lock();
      continue;
    }

    lock.unlock();
    if (opt_.fault.delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(opt_.fault.delay_us));
    }
    run_group(std::move(group), was_full);
    lock.lock();
  }
}

}  // namespace ihtl::serve
