// Micro-batching admission queue: coalesce compatible queries into one
// batched SpMV traversal.
//
// This is the serving-side payoff of `spmv_batch`: k lanes share every edge
// fetch, so k coalesced single-source queries cost roughly one traversal of
// memory traffic instead of k. The queue groups pending requests by
// batch_class() (op + lane-independent params) and flushes a class when its
// lanes fill `max_lanes` or its oldest request has waited `max_delay`; a
// request alone on an idle queue therefore pays at most `max_delay` extra
// latency in exchange for the chance to amortize.
//
// Threading: producers (connection handlers) block in submit(); ONE
// dispatch thread owned by the Batcher pops groups and runs the compute
// callback — it is the only caller of the GraphSession compute methods, so
// the engines' single-caller contract holds no matter how many clients
// connect.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/types.h"
#include "serve/protocol.h"

namespace ihtl::telemetry {
class MetricsRegistry;
struct RequestContext;
}  // namespace ihtl::telemetry

namespace ihtl::serve {

/// Fault-injection knobs for the lattice check: delay every flush by
/// `delay_us`, and silently re-queue (drop) the first `drop_flushes`
/// flushes instead of running them. Dropped flushes are retried on the next
/// wakeup, so progress is guaranteed — the faults stress deadline handling
/// and the differential check's tolerance for reordered batches, they never
/// lose requests.
struct FlushFault {
  unsigned delay_us = 0;
  unsigned drop_flushes = 0;
};

struct BatcherOptions {
  std::size_t max_lanes = 8;  ///< flush a class at this many lanes
  std::chrono::microseconds max_delay{200};
  FlushFault fault;
};

class Batcher {
 public:
  /// One flushed group: every request shares a batch_class. The compute
  /// function returns one result vector PER REQUEST (n×lanes(), original
  /// ID space), in group order.
  struct Group {
    std::vector<QueryRequest> requests;
    std::size_t lanes = 0;
  };
  using ComputeFn =
      std::function<std::vector<std::vector<value_t>>(const Group&)>;

  /// Starts the dispatch thread. `compute` runs on that thread only.
  Batcher(BatcherOptions opt, ComputeFn compute);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Enqueues a compute request and blocks until its flush completes.
  /// Throws whatever the compute function threw for the group. Requests
  /// wider than max_lanes flush alone (they cannot share a traversal).
  std::vector<value_t> submit(const QueryRequest& req) {
    return submit(req, nullptr);
  }

  /// Same, with request tracing: when `ctx` is non-null the dispatch
  /// thread deposits the admission-queue wait into ctx->queue_ns and the
  /// group traversal time into ctx->compute_ns (shared by every request
  /// coalesced into the flush — the cost of the traversal is the cost of
  /// the batch), stamps a flow_step trace event, and exports ctx->id as
  /// the active flow around the compute so pool workers can stamp theirs.
  /// The ctx must outlive the call (trivially true: the caller blocks).
  std::vector<value_t> submit(const QueryRequest& req,
                              telemetry::RequestContext* ctx);

  /// Drains every pending request (ignoring injected faults) and joins the
  /// dispatch thread. Idempotent; submit() after stop() throws.
  void stop();

  /// Pending lanes across all classes (telemetry snapshot).
  std::size_t queue_depth() const;

  std::uint64_t flushes() const { return flushes_; }
  std::uint64_t full_flushes() const { return full_flushes_; }
  std::uint64_t deadline_flushes() const { return deadline_flushes_; }
  std::uint64_t dropped_flushes() const { return dropped_flushes_; }
  std::uint64_t lanes_flushed() const { return lanes_flushed_; }

  /// Mean lanes per flush — the lane-occupancy headline (1.0 = no
  /// coalescing happened, max_lanes = every flush full).
  double mean_lane_occupancy() const {
    return flushes_ ? static_cast<double>(lanes_flushed_) /
                          static_cast<double>(flushes_)
                    : 0.0;
  }

  /// Publishes absolute `<prefix>.*` gauges for the counters above plus
  /// `.queue_depth` and `.lane_occupancy`; idempotent.
  void export_gauges(telemetry::MetricsRegistry& reg,
                     const std::string& prefix) const;

  /// Zeroes the flush counters so a multi-rep bench can measure each rep
  /// independently. Only legal while the queue is idle (no pending
  /// requests, no in-flight flush) — the counters are otherwise owned by
  /// the dispatch thread.
  void reset_stats();

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    QueryRequest request;
    std::promise<std::vector<value_t>> promise;
    Clock::time_point enqueued;
    telemetry::RequestContext* ctx = nullptr;  ///< owned by the submitter
  };
  struct ClassQueue {
    std::deque<Pending> pending;
    std::size_t lanes = 0;
  };

  void dispatch_loop();
  /// Pops the next group to flush under `lock`; nullopt when nothing is
  /// due. `now` decides deadline expiry.
  bool pop_group(std::unique_lock<std::mutex>& lock, Clock::time_point now,
                 std::string& cls, std::vector<Pending>& out,
                 bool& was_full);
  void run_group(std::vector<Pending> group, bool was_full);

  BatcherOptions opt_;
  ComputeFn compute_;

  mutable std::mutex mutex_;
  std::condition_variable wake_dispatch_;
  std::map<std::string, ClassQueue> queues_;  ///< batch_class → waiters
  std::size_t total_lanes_ = 0;
  bool stopping_ = false;
  unsigned drops_remaining_ = 0;

  // Counters are written by the dispatch thread only; read via the const
  // accessors from stats handlers (monotonic, torn reads are harmless —
  // they are exported as gauges, not deltas).
  std::uint64_t flushes_ = 0;
  std::uint64_t full_flushes_ = 0;
  std::uint64_t deadline_flushes_ = 0;
  std::uint64_t dropped_flushes_ = 0;
  std::uint64_t lanes_flushed_ = 0;

  std::thread dispatch_;
};

}  // namespace ihtl::serve
