#include "serve/session.h"

#include <cmath>
#include <utility>

#include "parallel/parallel_for.h"
#include "parallel/timer.h"
#include "telemetry/metrics.h"

namespace ihtl::serve {

namespace {

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

value_t spmv_input_value(std::uint64_t seed, vid_t v) {
  const std::uint64_t mixed = splitmix64(seed ^ (0x9e3779b97f4a7c15ULL *
                                                 (std::uint64_t{v} + 1)));
  // Top 53 bits → [0, 1): exact in a double, identical on every caller.
  return static_cast<value_t>(mixed >> 11) * 0x1.0p-53;
}

GraphSession::GraphSession(Graph g, const SessionOptions& opt,
                           telemetry::MetricsRegistry* reg)
    : g_(std::move(g)),
      pool_(opt.threads),
      ig_([&] {
        Timer prep;
        IhtlGraph built = build_ihtl_graph(g_, opt.ihtl);
        preprocess_s_ = prep.elapsed_seconds();
        return built;
      }()),
      opt_(opt),
      reg_(reg) {
  rebind_engines();
}

void GraphSession::rebind_engines() {
  const vid_t n = g_.num_vertices();
  const auto& o2n = ig_.old_to_new();
  deg_new_.assign(n, 0);
  for (vid_t v = 0; v < n; ++v) deg_new_[o2n[v]] = g_.out_degree(v);
  plus_engine_.reset();
  min_engine_.reset();
  plus_sharded_.reset();
  min_sharded_.reset();
  if (opt_.shards > 1) {
    plus_sharded_.emplace(ig_, pool_, opt_.shards, opt_.ihtl.push_policy);
    min_sharded_.emplace(ig_, pool_, opt_.shards, opt_.ihtl.push_policy);
  } else {
    plus_engine_.emplace(ig_, pool_, opt_.ihtl.push_policy);
    min_engine_.emplace(ig_, pool_, opt_.ihtl.push_policy);
  }
  wire_engine_metrics();
}

void GraphSession::wire_engine_metrics() {
  if (reg_ == nullptr) return;
  if (plus_engine_) plus_engine_->set_metrics(reg_);
  if (min_engine_) min_engine_->set_metrics(reg_);
  if (plus_sharded_) plus_sharded_->set_metrics(reg_);
  if (min_sharded_) min_sharded_->set_metrics(reg_);
}

void GraphSession::adopt_metrics_registry(telemetry::MetricsRegistry* reg) {
  if (reg_ != nullptr || reg == nullptr) return;
  reg_ = reg;
  wire_engine_metrics();
}

std::size_t GraphSession::num_shards() const {
  return plus_sharded_ ? plus_sharded_->num_shards() : 1;
}

double GraphSession::shard_imbalance() const {
  return plus_sharded_ ? plus_sharded_->imbalance() : 1.0;
}

void GraphSession::plus_apply(std::span<const value_t> x,
                              std::span<value_t> y, std::size_t k) {
  if (plus_sharded_) {
    if (k == 1) {
      plus_sharded_->spmv(x, y);
    } else {
      plus_sharded_->spmv_batch(x, y, k);
    }
  } else if (k == 1) {
    plus_engine_->spmv(x, y);
  } else {
    plus_engine_->spmv_batch(x, y, k);
  }
}

void GraphSession::min_apply(std::span<const value_t> x, std::span<value_t> y,
                             std::size_t k) {
  if (min_sharded_) {
    if (k == 1) {
      min_sharded_->spmv(x, y);
    } else {
      min_sharded_->spmv_batch(x, y, k);
    }
  } else if (k == 1) {
    min_engine_->spmv(x, y);
  } else {
    min_engine_->spmv_batch(x, y, k);
  }
}

UpdateStats GraphSession::apply_update(const UpdateBatch& batch) {
  UpdateStats stats;
  if (batch.empty()) return stats;  // no-op at the SAME epoch
  Timer timer;
  // Build the post-batch state on the side first: apply_update and
  // update_ihtl_graph throw before any member mutates, so a rejected batch
  // leaves the session exactly as it was (no partial batch, no bump).
  Graph g_new = ihtl::apply_update(g_, batch);
  IhtlGraph ig_new = update_ihtl_graph(ig_, g_, g_new, batch, opt_.ihtl,
                                       opt_.update, &stats);
  // Commit: engines must be rebuilt BEFORE the bump so no request keyed to
  // the new epoch can reach engines over the old layout, and the bump comes
  // LAST so entries cached under the old epoch stay keyed to the state that
  // produced them (apply-then-bump; see the epoch analysis in server.cpp).
  g_ = std::move(g_new);
  ig_ = std::move(ig_new);
  rebind_engines();
  bump_epoch();
  stats.seconds = timer.elapsed_seconds();
  return stats;
}

GraphSession::~GraphSession() { drain(); }

void GraphSession::drain() {
  // Members destruct in reverse declaration order, so without this the
  // engines (declared after pool_) would die first and the pool's join
  // would be safe anyway — but a long-lived server wants the workers gone
  // at stop() time, not at destruction, while queries may still trickle in
  // and run serially. ThreadPool::shutdown() is idempotent.
  if (drained_) return;
  drained_ = true;
  pool_.shutdown();
}

std::vector<value_t> GraphSession::ppr_batch(std::span<const vid_t> sources,
                                             unsigned iterations,
                                             double damping) {
  const vid_t n = g_.num_vertices();
  const std::size_t k = sources.size();
  if (n == 0 || k == 0) return {};
  const auto& o2n = ig_.old_to_new();

  // One-hot restart per lane, exactly as pagerank_personalized_batch but
  // over the persistent engine and with a FIXED iteration count: no
  // tolerance early-out, so a lane's answer is a pure function of its own
  // source and never of the batch it happened to share a flush with.
  std::vector<value_t> base(static_cast<std::size_t>(n) * k, 0.0);
  std::vector<value_t> pr(base.size(), 0.0);
  for (std::size_t lane = 0; lane < k; ++lane) {
    const std::size_t row = static_cast<std::size_t>(o2n[sources[lane] % n]);
    base[row * k + lane] = 1.0 - damping;
    pr[row * k + lane] = 1.0;
  }

  std::vector<value_t> x(pr.size()), y(pr.size());
  for (unsigned it = 0; it < iterations; ++it) {
    parallel_for(pool_, 0, n, [&](std::uint64_t v, std::size_t) {
      const value_t scale =
          deg_new_[v] ? damping / static_cast<value_t>(deg_new_[v]) : 0.0;
      for (std::size_t lane = 0; lane < k; ++lane) {
        x[v * k + lane] = pr[v * k + lane] * scale;
      }
    });
    plus_apply(x, y, k);
    parallel_for(pool_, 0, n, [&](std::uint64_t v, std::size_t) {
      for (std::size_t lane = 0; lane < k; ++lane) {
        const std::size_t i = v * k + lane;
        pr[i] = base[i] + y[i];
      }
    });
  }

  std::vector<value_t> out(pr.size());
  for (vid_t v = 0; v < n; ++v) {
    const std::size_t src = static_cast<std::size_t>(o2n[v]) * k;
    const std::size_t dst = static_cast<std::size_t>(v) * k;
    for (std::size_t lane = 0; lane < k; ++lane) {
      out[dst + lane] = pr[src + lane];
    }
  }
  return out;
}

std::vector<value_t> GraphSession::bfs_batch(std::span<const vid_t> sources) {
  const vid_t n = g_.num_vertices();
  const std::size_t k = sources.size();
  if (n == 0 || k == 0) return {};
  const auto& o2n = ig_.old_to_new();

  std::vector<value_t> vals(static_cast<std::size_t>(n) * k,
                            MinMonoid::identity());
  for (std::size_t lane = 0; lane < k; ++lane) {
    vals[static_cast<std::size_t>(o2n[sources[lane] % n]) * k + lane] = 0.0;
  }

  // min_fixpoint_batch over the persistent engine: a lane that has reached
  // its own fixpoint is a no-op under further min rounds, so deeper lanes
  // sharing the batch never change a shallow lane's levels.
  std::vector<value_t> x(vals.size()), y(vals.size());
  const unsigned max_rounds = n;
  for (unsigned round = 0; round < max_rounds; ++round) {
    parallel_for(pool_, 0, n, [&](std::uint64_t v, std::size_t) {
      for (std::size_t lane = 0; lane < k; ++lane) {
        x[v * k + lane] = vals[v * k + lane] + 1.0;
      }
    });
    min_apply(x, y, k);
    std::atomic<bool> changed{false};
    parallel_for(pool_, 0, n, [&](std::uint64_t v, std::size_t) {
      bool improved = false;
      for (std::size_t lane = 0; lane < k; ++lane) {
        const std::size_t i = v * k + lane;
        if (y[i] < vals[i]) {
          vals[i] = y[i];
          improved = true;
        }
      }
      if (improved) changed.store(true, std::memory_order_relaxed);
    });
    if (!changed.load()) break;
  }

  // Back to original IDs, with unreachable (+inf) mapped to -1 so the
  // levels survive a JSON round trip (protocol.h).
  std::vector<value_t> out(vals.size());
  for (vid_t v = 0; v < n; ++v) {
    const std::size_t src = static_cast<std::size_t>(o2n[v]) * k;
    const std::size_t dst = static_cast<std::size_t>(v) * k;
    for (std::size_t lane = 0; lane < k; ++lane) {
      const value_t level = vals[src + lane];
      out[dst + lane] = std::isinf(level) ? value_t{-1.0} : level;
    }
  }
  return out;
}

std::vector<value_t> GraphSession::spmv_batch(
    std::span<const std::uint64_t> x_seeds) {
  const vid_t n = g_.num_vertices();
  const std::size_t k = x_seeds.size();
  if (n == 0 || k == 0) return {};
  const auto& o2n = ig_.old_to_new();

  // Lane l's dense input is the seed-derived vector in ORIGINAL ID space,
  // permuted into the relabeled space here (the oracle builds the same
  // vector and multiplies with a serial kernel).
  std::vector<value_t> x(static_cast<std::size_t>(n) * k);
  for (vid_t v = 0; v < n; ++v) {
    const std::size_t row = static_cast<std::size_t>(o2n[v]) * k;
    for (std::size_t lane = 0; lane < k; ++lane) {
      x[row + lane] = spmv_input_value(x_seeds[lane], v);
    }
  }
  std::vector<value_t> y(x.size());
  plus_apply(x, y, k);

  std::vector<value_t> out(y.size());
  for (vid_t v = 0; v < n; ++v) {
    const std::size_t src = static_cast<std::size_t>(o2n[v]) * k;
    const std::size_t dst = static_cast<std::size_t>(v) * k;
    for (std::size_t lane = 0; lane < k; ++lane) {
      out[dst + lane] = y[src + lane];
    }
  }
  return out;
}

}  // namespace ihtl::serve
