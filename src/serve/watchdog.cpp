#include "serve/watchdog.h"

#include "telemetry/event_log.h"
#include "telemetry/metrics.h"

namespace ihtl::serve {

Watchdog::Watchdog(WatchdogOptions opt) : opt_(opt) {
  if (opt_.window == 0) opt_.window = 1;
  hits_.assign(opt_.window, false);
}

void Watchdog::warn(const char* event, double value) {
  if (log_ == nullptr) return;
  telemetry::JsonValue fields = telemetry::JsonValue::object();
  fields.set("value", value);
  log_->log(telemetry::LogLevel::warn, event, std::move(fields));
}

void Watchdog::on_admission(std::size_t queue_depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_depth >= opt_.queue_depth_limit) {
    if (!saturated_) {
      saturated_ = true;
      ++saturation_events_;
      warn("watchdog_queue_saturation", static_cast<double>(queue_depth));
    }
  } else {
    saturated_ = false;
  }
}

double Watchdog::hit_rate_locked() const {
  if (hits_count_ == 0) return 1.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < hits_count_; ++i) {
    if (hits_[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(hits_count_);
}

void Watchdog::on_request(bool cache_hit, std::uint64_t queue_wait_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_wait_ns >
      static_cast<std::uint64_t>(opt_.deadline_factor *
                                 static_cast<double>(opt_.max_delay_ns))) {
    ++deadline_misses_;
  }
  hits_[hits_next_] = cache_hit;
  hits_next_ = (hits_next_ + 1) % opt_.window;
  if (hits_count_ < opt_.window) ++hits_count_;
  // Collapse detection only arms after the window saw a healthy rate, and
  // re-arms after recovery — so a cold cache at startup is not a "collapse"
  // and a sustained bad state trips once.
  const double rate = hit_rate_locked();
  if (hits_count_ < opt_.window) return;
  if (rate >= opt_.healthy_threshold) {
    was_healthy_ = true;
    collapsed_ = false;
  } else if (was_healthy_ && !collapsed_ && rate < opt_.collapse_threshold) {
    collapsed_ = true;
    ++hitrate_collapses_;
    warn("watchdog_hitrate_collapse", rate);
  }
}

void Watchdog::on_imbalance(double imbalance) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (imbalance > opt_.imbalance_threshold) {
    if (!imbalance_alerted_) {
      imbalance_alerted_ = true;
      ++imbalance_alerts_;
      warn("watchdog_shard_imbalance", imbalance);
    }
  } else {
    imbalance_alerted_ = false;
  }
}

std::uint64_t Watchdog::deadline_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deadline_misses_;
}

std::uint64_t Watchdog::saturation_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return saturation_events_;
}

std::uint64_t Watchdog::hitrate_collapses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hitrate_collapses_;
}

std::uint64_t Watchdog::imbalance_alerts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return imbalance_alerts_;
}

double Watchdog::window_hit_rate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hit_rate_locked();
}

void Watchdog::export_gauges(telemetry::MetricsRegistry& reg,
                             const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  reg.set_gauge(prefix + ".deadline_misses",
                static_cast<double>(deadline_misses_));
  reg.set_gauge(prefix + ".saturation_events",
                static_cast<double>(saturation_events_));
  reg.set_gauge(prefix + ".hitrate_collapses",
                static_cast<double>(hitrate_collapses_));
  reg.set_gauge(prefix + ".imbalance_alerts",
                static_cast<double>(imbalance_alerts_));
  reg.set_gauge(prefix + ".window_hit_rate", hit_rate_locked());
}

}  // namespace ihtl::serve
