// Compressed sparse adjacency structure (CSR or CSC depending on use).
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "graph/types.h"

namespace ihtl {

/// One compressed adjacency: `offsets` has num_vertices()+1 entries and
/// `targets[offsets[v] .. offsets[v+1])` are v's neighbours. When used as a
/// CSR the targets are out-neighbours; as a CSC they are in-neighbours.
struct Adjacency {
  std::vector<eid_t> offsets;  // size n+1; offsets[0] == 0
  std::vector<vid_t> targets;  // size m

  vid_t num_vertices() const {
    return offsets.empty() ? 0 : static_cast<vid_t>(offsets.size() - 1);
  }
  eid_t num_edges() const { return offsets.empty() ? 0 : offsets.back(); }

  eid_t degree(vid_t v) const { return offsets[v + 1] - offsets[v]; }

  std::span<const vid_t> neighbors(vid_t v) const {
    return {targets.data() + offsets[v],
            static_cast<std::size_t>(degree(v))};
  }

  /// True if `t` appears in v's neighbour list. Requires sorted neighbour
  /// lists (BuildOptions::sort_neighbors or sort_all_neighbor_lists()).
  bool contains(vid_t v, vid_t t) const;

  /// Sorts every neighbour list ascending (enables contains()).
  void sort_all_neighbor_lists();

  /// Structural sanity: offsets monotone, targets in range.
  bool valid() const;

  /// Bytes of topology data (offsets + targets), for Table 4 accounting.
  std::size_t topology_bytes() const {
    return offsets.size() * sizeof(eid_t) + targets.size() * sizeof(vid_t);
  }
};

}  // namespace ihtl
