// Light-weight compressed adjacency (Section 6: "the size of topology data
// of iHTL graph can be reduced using light-weight graph compression
// techniques" — the WebGraph/LLP family of delta-gap codings [9, 10]).
//
// Encoding: each vertex's neighbour list is sorted ascending and stored as
// LEB128 varints of the gaps (first neighbour absolute, then deltas-1).
// Typical web/social lists compress to 1-2 bytes per edge instead of 4.
// Decoding is a sequential scan — exactly the access pattern of the SpMV
// kernels, so a pull traversal can run directly on the compressed form.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/adjacency.h"

namespace ihtl {

/// Varint-gap compressed adjacency.
class CompressedAdjacency {
 public:
  CompressedAdjacency() = default;

  /// Compresses `adj`. Neighbour lists are sorted during encoding; the
  /// decoded lists come back ascending (SpMV reductions are order-free).
  static CompressedAdjacency encode(const Adjacency& adj);

  vid_t num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<vid_t>(offsets_.size() - 1);
  }
  eid_t num_edges() const { return num_edges_; }
  eid_t degree(vid_t v) const { return degrees_[v]; }

  /// Streams v's neighbours (ascending) through `fn(vid_t)`.
  template <typename Fn>
  void for_each_neighbor(vid_t v, Fn&& fn) const {
    const std::uint8_t* p = bytes_.data() + offsets_[v];
    vid_t current = 0;
    const eid_t deg = degrees_[v];
    for (eid_t i = 0; i < deg; ++i) {
      std::uint32_t delta = 0;
      int shift = 0;
      std::uint8_t byte;
      do {
        byte = *p++;
        delta |= static_cast<std::uint32_t>(byte & 0x7F) << shift;
        shift += 7;
      } while (byte & 0x80);
      current = i == 0 ? delta : current + delta;
      fn(current);
    }
  }

  /// Expands back to an uncompressed Adjacency (sorted lists).
  Adjacency decode() const;

  /// Compressed topology bytes (payload + per-vertex index + degrees).
  std::size_t topology_bytes() const {
    return bytes_.size() + offsets_.size() * sizeof(eid_t) +
           degrees_.size() * sizeof(eid_t);
  }
  /// Payload only — bytes per edge is the compression headline.
  std::size_t payload_bytes() const { return bytes_.size(); }

  /// Per-vertex byte offsets (size n+1). Byte counts are proportional to
  /// decode work, so edge-balanced partitioning can run on these directly.
  std::span<const eid_t> byte_offsets() const { return offsets_; }

 private:
  std::vector<eid_t> offsets_;  // byte offset of each vertex's stream
  std::vector<eid_t> degrees_;
  std::vector<std::uint8_t> bytes_;
  eid_t num_edges_ = 0;
};

}  // namespace ihtl
