#include "graph/stats.h"

#include <algorithm>
#include <bit>
#include <numeric>

namespace ihtl {

GraphStats compute_stats(const Graph& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    s.max_in_degree = std::max(s.max_in_degree, g.in_degree(v));
    s.max_out_degree = std::max(s.max_out_degree, g.out_degree(v));
  }
  s.avg_degree = s.num_vertices
                     ? static_cast<double>(s.num_edges) / s.num_vertices
                     : 0.0;

  if (s.num_vertices > 0 && s.num_edges > 0) {
    std::vector<eid_t> in_degs(s.num_vertices);
    for (vid_t v = 0; v < s.num_vertices; ++v) in_degs[v] = g.in_degree(v);
    std::sort(in_degs.begin(), in_degs.end(), std::greater<>());
    const vid_t k = std::max<vid_t>(1, s.num_vertices / 100);
    const eid_t covered =
        std::accumulate(in_degs.begin(), in_degs.begin() + k, eid_t{0});
    s.top1pct_in_edge_share =
        static_cast<double>(covered) / static_cast<double>(s.num_edges);
  }
  return s;
}

double asymmetricity(const Graph& g, vid_t v) {
  const auto in_nbrs = g.in().neighbors(v);
  if (in_nbrs.empty()) return 0.0;
  eid_t missing = 0;
  for (const vid_t u : in_nbrs) {
    if (!g.has_edge(v, u)) ++missing;
  }
  return static_cast<double>(missing) / static_cast<double>(in_nbrs.size());
}

double mean_asymmetricity_in_degree_range(const Graph& g, eid_t min_deg,
                                          eid_t max_deg) {
  double total = 0.0;
  vid_t count = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const eid_t d = g.in_degree(v);
    if (d >= min_deg && d < max_deg) {
      total += asymmetricity(g, v);
      ++count;
    }
  }
  return count ? total / count : 0.0;
}

std::vector<std::vector<vid_t>> bucket_by_in_degree(const Graph& g) {
  std::vector<std::vector<vid_t>> buckets;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const eid_t d = g.in_degree(v);
    if (d == 0) continue;
    const unsigned b = std::bit_width(d) - 1;  // floor(log2(d))
    if (buckets.size() <= b) buckets.resize(b + 1);
    buckets[b].push_back(v);
  }
  return buckets;
}

vid_t vertices_needed_for_edge_share(const Graph& g, double share,
                                     bool by_out_degree) {
  const vid_t n = g.num_vertices();
  std::vector<eid_t> degs(n);
  for (vid_t v = 0; v < n; ++v) {
    degs[v] = by_out_degree ? g.out_degree(v) : g.in_degree(v);
  }
  std::sort(degs.begin(), degs.end(), std::greater<>());
  const auto target = static_cast<eid_t>(share * g.num_edges());
  eid_t covered = 0;
  for (vid_t k = 0; k < n; ++k) {
    covered += degs[k];
    if (covered >= target) return k + 1;
  }
  return n;
}

}  // namespace ihtl
