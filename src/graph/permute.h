// Vertex permutations and relabeling.
//
// Relabeling algorithms (SlashBurn, GOrder, Rabbit-Order — Section 4.5) and
// iHTL's own relabeling array (Section 3.2) are expressed as permutations.
// Convention: a permutation `perm` maps OLD id -> NEW id, i.e. vertex v in
// the input graph becomes vertex perm[v] in the relabeled graph.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace ihtl {

/// True iff `perm` is a bijection on [0, perm.size()).
bool is_permutation(std::span<const vid_t> perm);

/// Inverse permutation: inv[perm[v]] == v. The paper's "relabeling array"
/// (Figure 4) stores NEW id -> OLD id, i.e. the inverse of our convention.
std::vector<vid_t> invert_permutation(std::span<const vid_t> perm);

/// Composition: result[v] = second[first[v]] (apply `first`, then `second`).
std::vector<vid_t> compose_permutations(std::span<const vid_t> first,
                                        std::span<const vid_t> second);

/// Identity permutation of length n.
std::vector<vid_t> identity_permutation(vid_t n);

/// Relabels the graph: edge (u,v) becomes (perm[u], perm[v]).
/// Neighbour lists of the result are sorted iff `sort_neighbors`.
Graph apply_permutation(const Graph& g, std::span<const vid_t> perm,
                        bool sort_neighbors = false);

/// Permutes a per-vertex value array into the new ID space:
/// out[perm[v]] = values[v].
template <typename T>
std::vector<T> permute_values(std::span<const T> values,
                              std::span<const vid_t> perm) {
  std::vector<T> out(values.size());
  for (std::size_t v = 0; v < values.size(); ++v) out[perm[v]] = values[v];
  return out;
}

/// Gathers a permuted array back to original IDs: out[v] = values[perm[v]].
template <typename T>
std::vector<T> unpermute_values(std::span<const T> values,
                                std::span<const vid_t> perm) {
  std::vector<T> out(values.size());
  for (std::size_t v = 0; v < values.size(); ++v) out[v] = values[perm[v]];
  return out;
}

}  // namespace ihtl
