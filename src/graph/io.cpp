#include "graph/io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace ihtl {

namespace {

// Container format v2: the header stamps the on-disk integer widths so a
// file written with different vid_t/eid_t sizes is rejected with a clear
// message instead of loading as garbage.
constexpr char kMagic[8] = {'i', 'H', 'T', 'L', 'G', 'R', 'v', '2'};
constexpr char kMagicV1[8] = {'i', 'H', 'T', 'L', 'G', 'R', 'v', '1'};

void write_raw(std::ofstream& out, const void* data, std::size_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) throw std::runtime_error("ihtl::save_graph_binary: write failed");
}

void read_raw(std::ifstream& in, void* data, std::size_t bytes) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (!in) throw std::runtime_error("ihtl::load_graph_binary: read failed");
}

void write_adjacency(std::ofstream& out, const Adjacency& adj) {
  const std::uint64_t n_off = adj.offsets.size();
  const std::uint64_t n_tgt = adj.targets.size();
  write_raw(out, &n_off, sizeof(n_off));
  write_raw(out, &n_tgt, sizeof(n_tgt));
  write_raw(out, adj.offsets.data(), n_off * sizeof(eid_t));
  write_raw(out, adj.targets.data(), n_tgt * sizeof(vid_t));
}

/// Reads one adjacency, bounding the on-disk counts by the bytes actually
/// left in the file: a corrupt count must produce a clean "corrupt
/// adjacency" error, never a multi-GB resize / bad_alloc.
Adjacency read_adjacency(std::ifstream& in, std::uint64_t file_size) {
  std::uint64_t n_off = 0, n_tgt = 0;
  read_raw(in, &n_off, sizeof(n_off));
  read_raw(in, &n_tgt, sizeof(n_tgt));
  const auto pos = static_cast<std::uint64_t>(in.tellg());
  const std::uint64_t remaining = file_size > pos ? file_size - pos : 0;
  // Checked n_off*8 + n_tgt*4 <= remaining, without overflow.
  if (n_off > remaining / sizeof(eid_t) ||
      n_tgt > (remaining - n_off * sizeof(eid_t)) / sizeof(vid_t)) {
    throw std::runtime_error(
        "ihtl::load_graph_binary: corrupt adjacency (counts exceed file "
        "size)");
  }
  Adjacency adj;
  adj.offsets.resize(n_off);
  adj.targets.resize(n_tgt);
  read_raw(in, adj.offsets.data(), n_off * sizeof(eid_t));
  read_raw(in, adj.targets.data(), n_tgt * sizeof(vid_t));
  if (!adj.valid()) {
    throw std::runtime_error("ihtl::load_graph_binary: corrupt adjacency");
  }
  return adj;
}

std::uint64_t stream_size(std::ifstream& in) {
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  return size;
}

}  // namespace

void save_graph_binary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_raw(out, kMagic, sizeof(kMagic));
  const std::uint8_t widths[2] = {sizeof(vid_t), sizeof(eid_t)};
  write_raw(out, widths, sizeof(widths));
  write_adjacency(out, g.out());
  write_adjacency(out, g.in());
}

Graph load_graph_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  const std::uint64_t file_size = stream_size(in);
  char magic[8];
  read_raw(in, magic, sizeof(magic));
  if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    throw std::runtime_error(
        "ihtl graph file " + path +
        " uses the v1 header (no type widths); rewrite it with this "
        "version's save_graph_binary / ihtl_convert");
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not an ihtl graph file: " + path);
  }
  std::uint8_t widths[2] = {0, 0};
  read_raw(in, widths, sizeof(widths));
  if (widths[0] != sizeof(vid_t) || widths[1] != sizeof(eid_t)) {
    std::ostringstream msg;
    msg << "ihtl graph file " << path << " was written with vid_t="
        << unsigned{widths[0]} << "B/eid_t=" << unsigned{widths[1]}
        << "B but this build uses vid_t=" << sizeof(vid_t)
        << "B/eid_t=" << sizeof(eid_t)
        << "B; regenerate the file with a matching build";
    throw std::runtime_error(msg.str());
  }
  Adjacency out_adj = read_adjacency(in, file_size);
  Adjacency in_adj = read_adjacency(in, file_size);
  return Graph(std::move(out_adj), std::move(in_adj));
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << "# " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t t : g.out().neighbors(v)) {
      out << v << ' ' << t << '\n';
    }
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

Graph load_edge_list(const std::string& path, const BuildOptions& opt) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  // IDs must leave room for n = id + 1 to fit vid_t.
  constexpr std::uint64_t kMaxId = std::numeric_limits<vid_t>::max() - 1;
  std::vector<Edge> edges;
  vid_t n = 0;
  bool n_known = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hdr(line.substr(1));
      std::uint64_t hn = 0, hm = 0;
      if (hdr >> hn >> hm) {
        if (hn > kMaxId + 1) {
          throw std::runtime_error("vertex count overflows vid_t in " + path +
                                   ": " + line);
        }
        n = static_cast<vid_t>(hn);
        n_known = true;
        edges.reserve(hm);
      }
      continue;
    }
    std::istringstream ls(line);
    std::uint64_t s = 0, d = 0;
    if (!(ls >> s >> d)) {
      throw std::runtime_error("malformed edge line in " + path + ": " + line);
    }
    if (s > kMaxId || d > kMaxId) {
      throw std::runtime_error("vertex id overflows vid_t in " + path + ": " +
                               line);
    }
    if (n_known && (s >= n || d >= n)) {
      throw std::runtime_error("vertex id exceeds declared count " +
                               std::to_string(n) + " in " + path + ": " +
                               line);
    }
    edges.push_back({static_cast<vid_t>(s), static_cast<vid_t>(d)});
    if (!n_known) {
      n = std::max({n, static_cast<vid_t>(s + 1), static_cast<vid_t>(d + 1)});
    }
  }
  return build_graph(n, edges, opt);
}

}  // namespace ihtl
