#include "graph/io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ihtl {

namespace {

constexpr char kMagic[8] = {'i', 'H', 'T', 'L', 'G', 'R', 'v', '1'};

void write_raw(std::ofstream& out, const void* data, std::size_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) throw std::runtime_error("ihtl::save_graph_binary: write failed");
}

void read_raw(std::ifstream& in, void* data, std::size_t bytes) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (!in) throw std::runtime_error("ihtl::load_graph_binary: read failed");
}

void write_adjacency(std::ofstream& out, const Adjacency& adj) {
  const std::uint64_t n_off = adj.offsets.size();
  const std::uint64_t n_tgt = adj.targets.size();
  write_raw(out, &n_off, sizeof(n_off));
  write_raw(out, &n_tgt, sizeof(n_tgt));
  write_raw(out, adj.offsets.data(), n_off * sizeof(eid_t));
  write_raw(out, adj.targets.data(), n_tgt * sizeof(vid_t));
}

Adjacency read_adjacency(std::ifstream& in) {
  std::uint64_t n_off = 0, n_tgt = 0;
  read_raw(in, &n_off, sizeof(n_off));
  read_raw(in, &n_tgt, sizeof(n_tgt));
  Adjacency adj;
  adj.offsets.resize(n_off);
  adj.targets.resize(n_tgt);
  read_raw(in, adj.offsets.data(), n_off * sizeof(eid_t));
  read_raw(in, adj.targets.data(), n_tgt * sizeof(vid_t));
  if (!adj.valid()) {
    throw std::runtime_error("ihtl::load_graph_binary: corrupt adjacency");
  }
  return adj;
}

}  // namespace

void save_graph_binary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_raw(out, kMagic, sizeof(kMagic));
  write_adjacency(out, g.out());
  write_adjacency(out, g.in());
}

Graph load_graph_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  char magic[8];
  read_raw(in, magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not an ihtl graph file: " + path);
  }
  Adjacency out_adj = read_adjacency(in);
  Adjacency in_adj = read_adjacency(in);
  return Graph(std::move(out_adj), std::move(in_adj));
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << "# " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t t : g.out().neighbors(v)) {
      out << v << ' ' << t << '\n';
    }
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

Graph load_edge_list(const std::string& path, const BuildOptions& opt) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  std::vector<Edge> edges;
  vid_t n = 0;
  bool n_known = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hdr(line.substr(1));
      std::uint64_t hn = 0, hm = 0;
      if (hdr >> hn >> hm) {
        n = static_cast<vid_t>(hn);
        n_known = true;
        edges.reserve(hm);
      }
      continue;
    }
    std::istringstream ls(line);
    std::uint64_t s = 0, d = 0;
    if (!(ls >> s >> d)) {
      throw std::runtime_error("malformed edge line in " + path + ": " + line);
    }
    edges.push_back({static_cast<vid_t>(s), static_cast<vid_t>(d)});
    if (!n_known) {
      n = std::max({n, static_cast<vid_t>(s + 1), static_cast<vid_t>(d + 1)});
    }
  }
  return build_graph(n, edges, opt);
}

}  // namespace ihtl
