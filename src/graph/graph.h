// Directed graph held in both CSR (out-edges) and CSC (in-edges), the dual
// representation the paper's preprocessing walks (Section 3.2).
#pragma once

#include <span>
#include <vector>

#include "graph/adjacency.h"
#include "graph/types.h"

namespace ihtl {
class ThreadPool;  // fwd (defined in parallel/thread_pool.h)
}

namespace ihtl {

/// Options for building a Graph from an edge list.
struct BuildOptions {
  bool remove_self_loops = false;
  bool dedup = false;            ///< drop duplicate (src,dst) pairs
  bool remove_zero_degree = false;  ///< compact away isolated vertices (§4.1)
  bool sort_neighbors = false;   ///< sort lists (enables contains())
};

/// Immutable directed graph with synchronized CSR and CSC views.
class Graph {
 public:
  Graph() = default;
  Graph(Adjacency out, Adjacency in) : out_(std::move(out)), in_(std::move(in)) {}

  vid_t num_vertices() const { return out_.num_vertices(); }
  eid_t num_edges() const { return out_.num_edges(); }

  /// CSR view: out().neighbors(v) are v's out-neighbours (N+ in the paper).
  const Adjacency& out() const { return out_; }
  /// CSC view: in().neighbors(v) are v's in-neighbours (N- in the paper).
  const Adjacency& in() const { return in_; }

  eid_t out_degree(vid_t v) const { return out_.degree(v); }
  eid_t in_degree(vid_t v) const { return in_.degree(v); }

  /// True if the edge v -> t exists. Requires sorted neighbour lists.
  bool has_edge(vid_t v, vid_t t) const { return out_.contains(v, t); }

  /// CSR + CSC consistency (same edge multiset both ways, valid offsets).
  bool valid() const;

  /// Total topology bytes of the CSC representation (Table 4 baseline).
  std::size_t csc_topology_bytes() const { return in_.topology_bytes(); }

 private:
  Adjacency out_;
  Adjacency in_;
};

/// Builds a graph over vertices [0, n) from an edge list.
/// Edges referencing vertices >= n are invalid (asserted in debug builds).
Graph build_graph(vid_t n, std::span<const Edge> edges,
                  const BuildOptions& opt = {});

/// Builds only a CSR from an edge list keyed by `src`.
Adjacency build_csr(vid_t n, std::span<const Edge> edges);

/// Transposes an adjacency (CSR <-> CSC).
Adjacency transpose(const Adjacency& adj);

/// Extracts the full edge list (from the CSR view), in CSR order.
std::vector<Edge> to_edge_list(const Graph& g);

}  // namespace ihtl
