// Graph serialization: a binary container format (magic + sizes + raw CSR
// arrays) and a plain-text edge-list reader/writer. Storing preprocessed
// graphs in binary form is how the paper amortizes preprocessing across runs
// (Section 4.2).
#pragma once

#include <string>

#include "graph/graph.h"

namespace ihtl {

/// Writes `g` to `path` in the ihtl binary format. Throws std::runtime_error
/// on I/O failure.
void save_graph_binary(const Graph& g, const std::string& path);

/// Reads a graph previously written by save_graph_binary. Throws
/// std::runtime_error on I/O failure or format mismatch.
Graph load_graph_binary(const std::string& path);

/// Writes "src dst\n" lines. First line is "# n m".
void save_edge_list(const Graph& g, const std::string& path);

/// Reads the save_edge_list format (or a bare edge list; n inferred).
Graph load_edge_list(const std::string& path, const BuildOptions& opt = {});

}  // namespace ihtl
