#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_set>

namespace ihtl {

Adjacency build_csr(vid_t n, std::span<const Edge> edges) {
  Adjacency adj;
  adj.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges) {
    assert(e.src < n && e.dst < n);
    ++adj.offsets[e.src + 1];
  }
  std::partial_sum(adj.offsets.begin(), adj.offsets.end(),
                   adj.offsets.begin());
  adj.targets.resize(edges.size());
  std::vector<eid_t> cursor(adj.offsets.begin(), adj.offsets.end() - 1);
  for (const Edge& e : edges) {
    adj.targets[cursor[e.src]++] = e.dst;
  }
  return adj;
}

Adjacency transpose(const Adjacency& adj) {
  const vid_t n = adj.num_vertices();
  Adjacency out;
  out.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const vid_t t : adj.targets) ++out.offsets[t + 1];
  std::partial_sum(out.offsets.begin(), out.offsets.end(),
                   out.offsets.begin());
  out.targets.resize(adj.targets.size());
  std::vector<eid_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (vid_t v = 0; v < n; ++v) {
    for (const vid_t t : adj.neighbors(v)) {
      out.targets[cursor[t]++] = v;
    }
  }
  return out;
}

Graph build_graph(vid_t n, std::span<const Edge> edges,
                  const BuildOptions& opt) {
  std::vector<Edge> work(edges.begin(), edges.end());

  if (opt.remove_self_loops) {
    std::erase_if(work, [](const Edge& e) { return e.src == e.dst; });
  }
  if (opt.dedup) {
    std::sort(work.begin(), work.end(), [](const Edge& a, const Edge& b) {
      return a.src != b.src ? a.src < b.src : a.dst < b.dst;
    });
    work.erase(std::unique(work.begin(), work.end()), work.end());
  }

  vid_t num = n;
  if (opt.remove_zero_degree) {
    // Compact IDs so every remaining vertex has in-degree + out-degree > 0,
    // preserving relative order (the paper removes zero-degree vertices
    // before all measurements, Section 4.1).
    std::vector<char> used(n, 0);
    for (const Edge& e : work) {
      used[e.src] = 1;
      used[e.dst] = 1;
    }
    std::vector<vid_t> remap(n, 0);
    vid_t next = 0;
    for (vid_t v = 0; v < n; ++v) {
      if (used[v]) remap[v] = next++;
    }
    for (Edge& e : work) {
      e.src = remap[e.src];
      e.dst = remap[e.dst];
    }
    num = next;
  }

  Adjacency out = build_csr(num, work);
  Adjacency in = transpose(out);
  if (opt.sort_neighbors) {
    out.sort_all_neighbor_lists();
    in.sort_all_neighbor_lists();
  }
  return Graph(std::move(out), std::move(in));
}

bool Graph::valid() const {
  if (!out_.valid() || !in_.valid()) return false;
  if (out_.num_vertices() != in_.num_vertices()) return false;
  if (out_.num_edges() != in_.num_edges()) return false;
  // Degree-sum cross check: sum of out-degrees seen from the CSC must match.
  std::vector<eid_t> out_deg_from_in(out_.num_vertices(), 0);
  for (vid_t v = 0; v < in_.num_vertices(); ++v) {
    for (const vid_t u : in_.neighbors(v)) ++out_deg_from_in[u];
  }
  for (vid_t v = 0; v < out_.num_vertices(); ++v) {
    if (out_deg_from_in[v] != out_.degree(v)) return false;
  }
  return true;
}

std::vector<Edge> to_edge_list(const Graph& g) {
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t t : g.out().neighbors(v)) edges.push_back({v, t});
  }
  return edges;
}

}  // namespace ihtl
