#include "graph/adjacency.h"

#include <algorithm>

namespace ihtl {

bool Adjacency::contains(vid_t v, vid_t t) const {
  const auto nbrs = neighbors(v);
  return std::binary_search(nbrs.begin(), nbrs.end(), t);
}

void Adjacency::sort_all_neighbor_lists() {
  const vid_t n = num_vertices();
  for (vid_t v = 0; v < n; ++v) {
    std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }
}

bool Adjacency::valid() const {
  if (offsets.empty()) return targets.empty();
  if (offsets.front() != 0) return false;
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }
  if (offsets.back() != targets.size()) return false;
  const vid_t n = num_vertices();
  for (const vid_t t : targets) {
    if (t >= n) return false;
  }
  return true;
}

}  // namespace ihtl
