#include "graph/permute.h"

#include <cassert>
#include <numeric>

namespace ihtl {

bool is_permutation(std::span<const vid_t> perm) {
  std::vector<char> seen(perm.size(), 0);
  for (const vid_t p : perm) {
    if (p >= perm.size() || seen[p]) return false;
    seen[p] = 1;
  }
  return true;
}

std::vector<vid_t> invert_permutation(std::span<const vid_t> perm) {
  std::vector<vid_t> inv(perm.size());
  for (vid_t v = 0; v < perm.size(); ++v) inv[perm[v]] = v;
  return inv;
}

std::vector<vid_t> compose_permutations(std::span<const vid_t> first,
                                        std::span<const vid_t> second) {
  assert(first.size() == second.size());
  std::vector<vid_t> out(first.size());
  for (vid_t v = 0; v < first.size(); ++v) out[v] = second[first[v]];
  return out;
}

std::vector<vid_t> identity_permutation(vid_t n) {
  std::vector<vid_t> perm(n);
  std::iota(perm.begin(), perm.end(), vid_t{0});
  return perm;
}

Graph apply_permutation(const Graph& g, std::span<const vid_t> perm,
                        bool sort_neighbors) {
  assert(perm.size() == g.num_vertices());
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t t : g.out().neighbors(v)) {
      edges.push_back({perm[v], perm[t]});
    }
  }
  BuildOptions opt;
  opt.sort_neighbors = sort_neighbors;
  return build_graph(g.num_vertices(), edges, opt);
}

}  // namespace ihtl
