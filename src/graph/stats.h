// Structural statistics: degree extrema, skew, and the per-vertex
// asymmetricity measure of Figure 9.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ihtl {

/// Summary statistics mirroring Table 1's columns.
struct GraphStats {
  vid_t num_vertices = 0;
  eid_t num_edges = 0;
  eid_t max_in_degree = 0;
  eid_t max_out_degree = 0;
  double avg_degree = 0.0;
  /// Fraction of edges pointing at the top 1% in-degree vertices — a direct
  /// skew measure (hubs capture "a disproportionately large fraction").
  double top1pct_in_edge_share = 0.0;
};

GraphStats compute_stats(const Graph& g);

/// Asymmetricity of v (Section 5.4):
///   |{(u,v) in E : (v,u) not in E}| / |{(u,v) in E}|
/// i.e. the fraction of v's in-neighbours that are not out-neighbours.
/// Requires sorted out-neighbour lists. Vertices with in-degree 0 report 0.
double asymmetricity(const Graph& g, vid_t v);

/// Mean asymmetricity of all vertices whose in-degree falls in
/// [min_deg, max_deg). Used to regenerate Figure 9's per-degree-bucket curve.
double mean_asymmetricity_in_degree_range(const Graph& g, eid_t min_deg,
                                          eid_t max_deg);

/// Power-of-two in-degree bucketing: bucket b holds vertices with in-degree
/// in [2^b, 2^(b+1)). Bucket 0 additionally holds degree-1 vertices; vertices
/// of degree 0 are skipped. Returns per-bucket vertex lists.
std::vector<std::vector<vid_t>> bucket_by_in_degree(const Graph& g);

/// Smallest k such that the k highest in-degree vertices cover `share` of
/// all edges (e.g. Section 5.4's "36% of vertices to capture 80% of edges").
vid_t vertices_needed_for_edge_share(const Graph& g, double share,
                                     bool by_out_degree);

}  // namespace ihtl
