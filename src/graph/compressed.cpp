#include "graph/compressed.h"

#include <algorithm>

namespace ihtl {

namespace {

void append_varint(std::vector<std::uint8_t>& out, std::uint32_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

}  // namespace

CompressedAdjacency CompressedAdjacency::encode(const Adjacency& adj) {
  CompressedAdjacency c;
  const vid_t n = adj.num_vertices();
  c.num_edges_ = adj.num_edges();
  c.offsets_.reserve(static_cast<std::size_t>(n) + 1);
  c.degrees_.reserve(n);
  c.bytes_.reserve(adj.targets.size());  // compressed is usually smaller

  std::vector<vid_t> sorted;
  c.offsets_.push_back(0);
  for (vid_t v = 0; v < n; ++v) {
    const auto nbrs = adj.neighbors(v);
    sorted.assign(nbrs.begin(), nbrs.end());
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      // Plain gaps (not gap-1) so duplicate neighbours (multigraphs) encode
      // correctly as zero deltas.
      const std::uint32_t gap = i == 0 ? sorted[0] : sorted[i] - sorted[i - 1];
      append_varint(c.bytes_, gap);
    }
    c.degrees_.push_back(sorted.size());
    c.offsets_.push_back(c.bytes_.size());
  }
  return c;
}

Adjacency CompressedAdjacency::decode() const {
  Adjacency adj;
  const vid_t n = num_vertices();
  adj.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t v = 0; v < n; ++v) adj.offsets[v + 1] = adj.offsets[v] + degrees_[v];
  adj.targets.resize(num_edges_);
  for (vid_t v = 0; v < n; ++v) {
    eid_t cursor = adj.offsets[v];
    for_each_neighbor(v, [&](vid_t u) { adj.targets[cursor++] = u; });
  }
  return adj;
}

}  // namespace ihtl
