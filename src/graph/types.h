// Fundamental graph types.
//
// Matching the paper's storage layout (Section 4.1): vertex IDs are 4-byte
// values (|V| < 2^32) and CSR/CSC index entries are 8 bytes.
#pragma once

#include <cstdint>

namespace ihtl {

/// Vertex identifier (4 bytes, as in the paper's neighbour arrays).
using vid_t = std::uint32_t;

/// Edge offset / edge count (8 bytes, as in the paper's index arrays).
using eid_t = std::uint64_t;

/// Vertex data element for SpMV (8 bytes, Section 4.1).
using value_t = double;

/// A directed edge src -> dst.
struct Edge {
  vid_t src = 0;
  vid_t dst = 0;
  bool operator==(const Edge&) const = default;
};

}  // namespace ihtl
