#include "gen/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "gen/rng.h"

namespace ihtl {

namespace {

/// Seeded Feistel-style scrambler: a bijection on [0, 2^bits) used to
/// scatter RMAT's low-ID hub concentration across the ID space.
vid_t scramble(vid_t v, unsigned bits, std::uint64_t key) {
  const vid_t mask = bits >= 32 ? ~vid_t{0} : ((vid_t{1} << bits) - 1);
  const unsigned half = bits / 2;
  const vid_t half_mask = (vid_t{1} << half) - 1;
  vid_t lo = v & half_mask;
  vid_t hi = (v >> half) & half_mask;
  for (int round = 0; round < 3; ++round) {
    std::uint64_t f = key ^ (static_cast<std::uint64_t>(lo) << 16) ^
                      (0x9E3779B9u * (round + 1));
    f = f * 0xBF58476D1CE4E5B9ULL;
    f ^= f >> 29;
    const vid_t nhi = lo;
    lo = (hi ^ static_cast<vid_t>(f)) & half_mask;
    hi = nhi;
  }
  const vid_t out = ((hi << half) | lo) & mask;
  return out;
}

}  // namespace

std::vector<Edge> rmat_edges(const RmatParams& p) {
  assert(p.a + p.b + p.c <= 1.0 + 1e-9);
  const vid_t n = vid_t{1} << p.scale;
  const eid_t m = static_cast<eid_t>(p.edge_factor) * n;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m * (1.0 + p.reciprocity)) + 16);
  Rng rng(p.seed);
  const std::uint64_t scramble_key = p.seed * 0xD1342543DE82EF95ULL + 1;

  for (eid_t e = 0; e < m; ++e) {
    vid_t src = 0, dst = 0;
    for (unsigned bit = 0; bit < p.scale; ++bit) {
      const double r = rng.next_double();
      // Per-level noise keeps the degree distribution from being too
      // regular (standard RMAT practice).
      const double noise = 0.05 * (rng.next_double() - 0.5);
      const double a = p.a + noise;
      const double b = p.b;
      const double c = p.c;
      src <<= 1;
      dst <<= 1;
      if (r < a) {
        // top-left quadrant: neither bit set
      } else if (r < a + b) {
        dst |= 1;
      } else if (r < a + b + c) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    // Degree-correlated reciprocation: pre-scramble, low dst IDs are the
    // prospective hubs (quadrant bias), and social-network hubs reciprocate
    // follows far more often than the tail (Figure 9: social in-hubs are
    // almost symmetric). Popular accounts follow back.
    const bool dst_is_hubby = dst < (vid_t{1} << p.scale) / 64;
    const double recip_prob =
        dst_is_hubby ? std::min(1.0, 2.0 * p.reciprocity)
                     : p.reciprocity * std::sqrt(p.reciprocity);
    src = scramble(src, p.scale, scramble_key);
    dst = scramble(dst, p.scale, scramble_key);
    edges.push_back({src, dst});
    if (rng.next_double() < recip_prob) {
      edges.push_back({dst, src});
    }
  }
  return edges;
}

std::vector<Edge> web_edges(const WebParams& p) {
  const vid_t n = p.num_vertices;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(p.avg_out_degree) * n);
  Rng rng(p.seed);

  const vid_t num_hubs =
      std::max<vid_t>(1, static_cast<vid_t>(p.hub_fraction * n));
  // Popular pages are a seeded-random subset of IDs (not the low IDs).
  std::vector<vid_t> hubs(num_hubs);
  for (vid_t h = 0; h < num_hubs; ++h) {
    hubs[h] = static_cast<vid_t>(rng.next_below(n));
  }

  const vid_t window =
      std::max<vid_t>(4, static_cast<vid_t>(p.locality_window * n));
  const double log_hubs = std::log(static_cast<double>(num_hubs) + 1.0);

  for (vid_t v = 0; v < n; ++v) {
    // Bounded out-degree: geometric-ish around the average, capped.
    unsigned d = 1;
    while (d < p.max_out_degree &&
           rng.next_double() < 1.0 - 1.0 / p.avg_out_degree) {
      ++d;
    }
    for (unsigned k = 0; k < d; ++k) {
      vid_t dst;
      if (rng.next_double() < p.hub_edge_share) {
        // Zipf(1)-distributed hub rank: r = floor(e^{u * ln(H+1)}) - 1.
        const double u = rng.next_double();
        auto rank = static_cast<vid_t>(std::exp(u * log_hubs)) - 1;
        if (rank >= num_hubs) rank = num_hubs - 1;
        dst = hubs[rank];
      } else {
        // Local link: a nearby page (crawl order locality).
        const auto off = static_cast<std::int64_t>(rng.next_below(2 * window)) -
                         static_cast<std::int64_t>(window);
        std::int64_t t = static_cast<std::int64_t>(v) + off;
        if (t < 0) t += n;
        if (t >= static_cast<std::int64_t>(n)) t -= n;
        dst = static_cast<vid_t>(t);
      }
      edges.push_back({v, dst});
    }
  }
  return edges;
}

std::vector<Edge> erdos_renyi_edges(vid_t n, eid_t m, std::uint64_t seed) {
  std::vector<Edge> edges;
  edges.reserve(m);
  Rng rng(seed);
  for (eid_t e = 0; e < m; ++e) {
    edges.push_back({static_cast<vid_t>(rng.next_below(n)),
                     static_cast<vid_t>(rng.next_below(n))});
  }
  return edges;
}

Graph build_eval_graph(vid_t n, std::vector<Edge> edges) {
  BuildOptions opt;
  opt.remove_self_loops = true;
  opt.dedup = true;
  opt.remove_zero_degree = true;
  opt.sort_neighbors = true;
  return build_graph(n, edges, opt);
}

}  // namespace ihtl
