#include "gen/datasets.h"

#include <stdexcept>

#include "gen/generators.h"

namespace ihtl {

const std::vector<DatasetSpec>& all_datasets() {
  static const std::vector<DatasetSpec> specs = {
      {"LvJrnl", DatasetKind::social, 0.45},
      {"Twtr10", DatasetKind::social, 0.65},
      {"TwtrMpi", DatasetKind::social, 0.75},
      {"Frndstr", DatasetKind::social, 0.15},
      {"SK", DatasetKind::web, 0.95},
      {"WbCc", DatasetKind::web, 0.60},
      {"UKDls", DatasetKind::web, 0.55},
      {"UU", DatasetKind::web, 0.65},
      {"UKDmn", DatasetKind::web, 0.50},
      {"ClWb9", DatasetKind::web, 0.30},
  };
  return specs;
}

const DatasetSpec& dataset_spec(const std::string& name) {
  for (const auto& s : all_datasets()) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("unknown dataset: " + name);
}

namespace {

std::uint64_t name_seed(const std::string& name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h | 1;
}

unsigned scale_bits(DatasetScale scale) {
  switch (scale) {
    case DatasetScale::tiny:
      return 10;
    case DatasetScale::small:
      return 13;
    case DatasetScale::bench:
      return 16;
    case DatasetScale::large:
      return 21;
  }
  return 13;
}

}  // namespace

Graph make_dataset(const DatasetSpec& spec, DatasetScale scale) {
  const unsigned bits = scale_bits(scale);
  const std::uint64_t seed = name_seed(spec.name);
  // The large scale trades average degree for vertex count: locality
  // effects depend on |V| (vertex-data footprint vs cache), so spend the
  // edge budget on more vertices.
  const bool large = scale == DatasetScale::large;

  if (spec.kind == DatasetKind::social) {
    RmatParams p;
    p.scale = bits;
    p.edge_factor = large ? 10 : 16;
    // skew in [0,1] maps a in [0.45, 0.70]: larger `a` concentrates edges
    // onto fewer vertices (stronger hubs).
    p.a = 0.45 + 0.25 * spec.skew;
    p.b = p.c = (0.97 - p.a) / 2.0;
    p.reciprocity = 0.45;  // social hubs are nearly symmetric (Fig. 9)
    p.seed = seed;
    return build_eval_graph(vid_t{1} << p.scale, rmat_edges(p));
  }

  WebParams p;
  p.num_vertices = vid_t{1} << bits;
  p.avg_out_degree = large ? 12 : 14;
  p.max_out_degree = 48;  // web graphs have no out-hubs (Table 1)
  // Sharper skew -> fewer popular pages absorbing more of the edges.
  p.hub_fraction = 0.006 - 0.005 * spec.skew;       // [0.001, 0.006]
  p.hub_edge_share = 0.30 + 0.45 * spec.skew;       // [0.30, 0.75]
  p.locality_window = 0.01;
  p.seed = seed;
  return build_eval_graph(p.num_vertices, web_edges(p));
}

Graph make_dataset(const std::string& name, DatasetScale scale) {
  return make_dataset(dataset_spec(name), scale);
}

}  // namespace ihtl
