// Registry of the 10 evaluation datasets (Table 1), as scaled-down synthetic
// stand-ins. Social networks (LvJrnl, Twtr10, TwtrMpi, Frndstr) are RMAT
// graphs with reciprocity (symmetric hubs); web graphs (SK, WbCc, UKDls, UU,
// UKDmn, ClWb9) come from the web generator (asymmetric in-hubs, bounded
// out-degree). Per-dataset parameters are tuned so relative skew ordering
// mirrors Table 1: e.g. Frndstr has the mildest skew (its real max degree is
// 4 K on 65 M vertices), SK the sharpest in-degree concentration.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace ihtl {

enum class DatasetKind { social, web };

/// How large to instantiate a dataset.
enum class DatasetScale {
  tiny,   ///< ~1 K vertices — unit tests
  small,  ///< ~8 K vertices — integration tests
  bench,  ///< ~64 K vertices, ~1-2 M edges — cache-simulator harnesses
  large,  ///< ~800 K vertices, ~20-30 M edges — wall-clock harnesses
          ///< (vertex data far exceeds a 2 MB L2, so pull thrashes)
};

struct DatasetSpec {
  std::string name;  ///< Table 1 short name
  DatasetKind kind = DatasetKind::social;
  /// Relative skew knob in [0,1]: 0 = mild (Frndstr-like), 1 = extreme
  /// (SK-like). Maps onto RMAT `a` or web hub parameters.
  double skew = 0.5;
};

/// The 10 Table 1 datasets, in paper order.
const std::vector<DatasetSpec>& all_datasets();

/// Finds a spec by name; throws std::out_of_range if unknown.
const DatasetSpec& dataset_spec(const std::string& name);

/// Instantiates a dataset at the given scale (deterministic per name+scale).
/// Result has self-loops removed, duplicates removed, zero-degree vertices
/// removed and sorted neighbour lists, matching the paper's evaluation
/// preprocessing (Section 4.1).
Graph make_dataset(const DatasetSpec& spec, DatasetScale scale);
Graph make_dataset(const std::string& name, DatasetScale scale);

}  // namespace ihtl
