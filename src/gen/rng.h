// Deterministic, seedable RNG used by all generators.
//
// SplitMix64 for seeding and xoshiro256** for the stream: fast, portable,
// and identical across platforms so every dataset in the benches is
// bit-reproducible from its seed.
#pragma once

#include <cstdint>

namespace ihtl {

/// SplitMix64 step; good for deriving independent seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna — public domain reference algorithm.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free mapping (slight bias is
    // irrelevant at our bounds, all << 2^32).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ihtl
