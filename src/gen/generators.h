// Synthetic graph generators.
//
// The paper evaluates on public social networks and web crawls up to 7.9 B
// edges (Table 1). Those datasets are unavailable here, so we generate
// scaled-down graphs that preserve the two structural properties iHTL's
// behaviour depends on:
//   1. skewed (power-law-like) in-degree distribution — in-hubs exist and
//      capture a large fraction of edges;
//   2. hub symmetry: social-network in-hubs are also out-hubs (reciprocal
//      follows), web-graph in-hubs are NOT out-hubs (popular pages link out
//      little) — the Figure 9 contrast.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ihtl {

/// RMAT/Kronecker generator parameters (social-network stand-in).
struct RmatParams {
  unsigned scale = 16;        ///< n = 2^scale vertices before compaction
  unsigned edge_factor = 16;  ///< m = edge_factor * n edges
  double a = 0.57, b = 0.19, c = 0.19;  ///< quadrant probs; d = 1-a-b-c
  double reciprocity = 0.4;   ///< fraction of edges that get a reverse edge
                              ///< (makes hubs symmetric, Figure 9 social)
  std::uint64_t seed = 1;
};

/// Generates the edge list of an RMAT graph. Vertex IDs are scrambled by a
/// seeded hash so hubs are not clustered at low IDs (real datasets'
/// "initial order" is not degree-sorted).
std::vector<Edge> rmat_edges(const RmatParams& p);

/// Web-crawl stand-in parameters.
struct WebParams {
  vid_t num_vertices = 1u << 16;
  unsigned avg_out_degree = 16;
  unsigned max_out_degree = 64;   ///< web pages have bounded out-degree
  double hub_fraction = 0.002;    ///< fraction of vertices that are popular
  double hub_edge_share = 0.5;    ///< fraction of edges aimed at hub pages
  double locality_window = 0.01;  ///< non-hub targets fall near the source
  std::uint64_t seed = 1;
};

/// Generates a web-like edge list: few in-hubs with enormous in-degree, no
/// out-hubs, strong spatial locality among non-hub targets.
std::vector<Edge> web_edges(const WebParams& p);

/// Erdős–Rényi G(n, m): m uniform random edges (no skew; negative control).
std::vector<Edge> erdos_renyi_edges(vid_t n, eid_t m, std::uint64_t seed);

/// Convenience: build a Graph from any of the above with the standard
/// evaluation options (self-loops removed, zero-degree removed, sorted
/// neighbour lists so asymmetricity is computable).
Graph build_eval_graph(vid_t n, std::vector<Edge> edges);

}  // namespace ihtl
