#include "cachesim/trace_spmv.h"

#include <bit>

namespace ihtl {

namespace {

// Disjoint base addresses for the arrays touched by the kernels.
constexpr std::uint64_t kX = 1ULL << 40;        // vertex data, previous iter
constexpr std::uint64_t kY = 1ULL << 41;        // vertex data, current iter
constexpr std::uint64_t kOffsets = 1ULL << 42;  // index arrays (8 B/entry)
constexpr std::uint64_t kTargets = 1ULL << 43;  // neighbour IDs (4 B/entry)
constexpr std::uint64_t kBuffer = 1ULL << 44;   // iHTL per-thread buffer
constexpr std::uint64_t kBlockStride = 1ULL << 34;  // per-block topology

constexpr std::size_t kValueBytes = sizeof(value_t);
constexpr std::size_t kIndexBytes = sizeof(eid_t);
constexpr std::size_t kNeighborBytes = sizeof(vid_t);

std::size_t degree_bucket(eid_t degree) {
  return degree == 0 ? 0 : std::bit_width(degree) - 1;
}

void ensure_buckets(DegreeMissProfile* profile, std::size_t bucket) {
  if (profile->accesses.size() <= bucket) {
    profile->accesses.resize(bucket + 1, 0);
    profile->llc_misses.resize(bucket + 1, 0);
  }
}

TraceCounters finish(const CacheHierarchy& caches) {
  TraceCounters c;
  c.memory_accesses = caches.total_accesses();
  c.l1_misses = caches.level(0).misses();
  if (caches.levels() > 1) c.l2_misses = caches.level(1).misses();
  if (caches.levels() > 2) c.l3_misses = caches.level(2).misses();
  return c;
}

}  // namespace

TraceCounters trace_pull_spmv(const Graph& g, CacheHierarchy& caches,
                              DegreeMissProfile* profile) {
  caches.reset_counters();
  const Adjacency& in = g.in();
  const std::size_t last = caches.levels();
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    caches.access(kOffsets + (v + 1) * kIndexBytes);
    const eid_t deg = in.degree(v);
    const std::size_t bucket = degree_bucket(deg);
    if (profile) ensure_buckets(profile, bucket);
    for (eid_t i = in.offsets[v]; i < in.offsets[v + 1]; ++i) {
      caches.access(kTargets + i * kNeighborBytes);
      const vid_t u = in.targets[i];
      const std::size_t hit_level = caches.access(kX + u * kValueBytes);
      if (profile) {
        ++profile->accesses[bucket];
        if (hit_level == last) ++profile->llc_misses[bucket];
      }
    }
    caches.access(kY + v * kValueBytes);
  }
  return finish(caches);
}

TraceCounters trace_push_spmv(const Graph& g, CacheHierarchy& caches,
                              DegreeMissProfile* profile) {
  caches.reset_counters();
  const Adjacency& out = g.out();
  const std::size_t last = caches.levels();
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    caches.access(kOffsets + (v + 1) * kIndexBytes);
    caches.access(kX + v * kValueBytes);
    for (eid_t i = out.offsets[v]; i < out.offsets[v + 1]; ++i) {
      caches.access(kTargets + i * kNeighborBytes);
      const vid_t t = out.targets[i];
      const std::size_t hit_level = caches.access(kY + t * kValueBytes);
      if (profile) {
        const std::size_t bucket = degree_bucket(g.in_degree(t));
        ensure_buckets(profile, bucket);
        ++profile->accesses[bucket];
        if (hit_level == last) ++profile->llc_misses[bucket];
      }
    }
  }
  return finish(caches);
}

TraceCounters trace_ihtl_spmv(const Graph& g, const IhtlGraph& ig,
                              CacheHierarchy& caches,
                              DegreeMissProfile* profile) {
  caches.reset_counters();
  const std::size_t last = caches.levels();
  const auto& n2o = ig.new_to_old();
  const vid_t num_hubs = ig.num_hubs();
  const vid_t push_sources = ig.num_push_sources();

  // Buffer reset (overhead type 4 in Section 4.3): sequential stores.
  for (vid_t h = 0; h < num_hubs; ++h) {
    caches.access(kBuffer + h * kValueBytes);
  }

  // Push phase over flipped blocks.
  for (std::size_t b = 0; b < ig.blocks().size(); ++b) {
    const FlippedBlock& blk = ig.blocks()[b];
    const std::uint64_t off_base = kOffsets + (b + 1) * kBlockStride;
    const std::uint64_t tgt_base = kTargets + (b + 1) * kBlockStride;
    for (vid_t v = 0; v < push_sources; ++v) {
      caches.access(off_base + (v + 1) * kIndexBytes);
      if (blk.csr.degree(v) == 0) continue;
      caches.access(kX + v * kValueBytes);
      for (eid_t i = blk.csr.offsets[v]; i < blk.csr.offsets[v + 1]; ++i) {
        caches.access(tgt_base + i * kNeighborBytes);
        const vid_t hub = blk.hub_begin + blk.csr.targets[i];
        const std::size_t hit_level =
            caches.access(kBuffer + hub * kValueBytes);
        if (profile) {
          const std::size_t bucket = degree_bucket(g.in_degree(n2o[hub]));
          ensure_buckets(profile, bucket);
          ++profile->accesses[bucket];
          if (hit_level == last) ++profile->llc_misses[bucket];
        }
      }
    }
  }

  // Merge (overhead type 3): sequential buffer reads + y stores.
  for (vid_t h = 0; h < num_hubs; ++h) {
    caches.access(kBuffer + h * kValueBytes);
    caches.access(kY + h * kValueBytes);
  }

  // Sparse-block pull.
  const Adjacency& sparse = ig.sparse();
  const std::uint64_t s_off = kOffsets + kBlockStride / 2;
  const std::uint64_t s_tgt = kTargets + kBlockStride / 2;
  for (vid_t local = 0; local < sparse.num_vertices(); ++local) {
    caches.access(s_off + (local + 1) * kIndexBytes);
    const vid_t old_v = n2o[num_hubs + local];
    const std::size_t bucket = degree_bucket(g.in_degree(old_v));
    if (profile) ensure_buckets(profile, bucket);
    for (eid_t i = sparse.offsets[local]; i < sparse.offsets[local + 1]; ++i) {
      caches.access(s_tgt + i * kNeighborBytes);
      const vid_t u = sparse.targets[i];
      const std::size_t hit_level = caches.access(kX + u * kValueBytes);
      if (profile) {
        ++profile->accesses[bucket];
        if (hit_level == last) ++profile->llc_misses[bucket];
      }
    }
    caches.access(kY + (num_hubs + local) * kValueBytes);
  }
  return finish(caches);
}

}  // namespace ihtl
