// Replays the exact memory-access streams of the SpMV kernels through the
// cache simulator — the PAPI substitute for Figure 1 and Table 3.
//
// Each per-vertex value is 8 bytes (Section 4.1), topology index entries 8
// bytes and neighbour IDs 4 bytes. Arrays live in disjoint address regions.
// The trace models a single worker thread, which is the per-core view the
// paper's L2 argument is about; the shared-L3 contention of 32 threads is
// out of scope for the model (documented in DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/cache.h"
#include "core/ihtl_graph.h"
#include "graph/graph.h"

namespace ihtl {

/// Aggregate counters for one traced SpMV (Table 3's columns).
struct TraceCounters {
  std::uint64_t memory_accesses = 0;  ///< loads + stores issued
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t l3_misses = 0;
};

/// Per-degree-bucket attribution of the *random* accesses (Figure 1).
/// Bucket b covers destination in-degree in [2^b, 2^(b+1)). For pull, the
/// random access is the x[u] read, attributed to the destination being
/// pulled; for iHTL's push phase it is the hub-buffer update, attributed to
/// the destination hub.
struct DegreeMissProfile {
  std::vector<std::uint64_t> accesses;    // per bucket
  std::vector<std::uint64_t> llc_misses;  // per bucket

  double miss_rate(std::size_t bucket) const {
    return accesses[bucket]
               ? static_cast<double>(llc_misses[bucket]) / accesses[bucket]
               : 0.0;
  }
};

/// Traces Algorithm 1 (pull) over `g`.
TraceCounters trace_pull_spmv(const Graph& g, CacheHierarchy& caches,
                              DegreeMissProfile* profile = nullptr);

/// Traces Algorithm 2 (push) over `g`; random accesses are the y[t] updates,
/// attributed to the destination's in-degree bucket.
TraceCounters trace_push_spmv(const Graph& g, CacheHierarchy& caches,
                              DegreeMissProfile* profile = nullptr);

/// Traces Algorithm 3 (iHTL: flipped-block push + merge + sparse pull).
/// `g` supplies original in-degrees for attribution.
TraceCounters trace_ihtl_spmv(const Graph& g, const IhtlGraph& ig,
                              CacheHierarchy& caches,
                              DegreeMissProfile* profile = nullptr);

}  // namespace ihtl
