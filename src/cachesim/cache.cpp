#include "cachesim/cache.h"

#include <bit>

#include "telemetry/metrics.h"
#include <cassert>

namespace ihtl {

CacheLevel::CacheLevel(const CacheConfig& cfg)
    : cfg_(cfg),
      num_sets_(cfg.num_sets()),
      line_shift_(std::countr_zero(cfg.line_bytes)),
      tags_(num_sets_ * cfg.ways, 0),
      age_(num_sets_ * cfg.ways, 0),
      valid_(num_sets_ * cfg.ways, 0) {
  assert(std::has_single_bit(cfg.line_bytes));
  assert(num_sets_ > 0);
}

bool CacheLevel::access(std::uint64_t addr) {
  ++accesses_;
  ++clock_;
  const std::uint64_t line = addr >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line % num_sets_);
  const std::size_t base = set * cfg_.ways;
  std::size_t lru_way = 0;
  std::uint64_t lru_age = ~std::uint64_t{0};
  for (std::size_t w = 0; w < cfg_.ways; ++w) {
    if (valid_[base + w] && tags_[base + w] == line) {
      age_[base + w] = clock_;
      return true;
    }
    const std::uint64_t a = valid_[base + w] ? age_[base + w] : 0;
    if (a < lru_age) {
      lru_age = a;
      lru_way = w;
    }
  }
  ++misses_;
  tags_[base + lru_way] = line;
  age_[base + lru_way] = clock_;
  valid_[base + lru_way] = 1;
  return false;
}

void CacheLevel::install(std::uint64_t addr) {
  ++clock_;
  const std::uint64_t line = addr >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line % num_sets_);
  const std::size_t base = set * cfg_.ways;
  std::size_t lru_way = 0;
  std::uint64_t lru_age = ~std::uint64_t{0};
  for (std::size_t w = 0; w < cfg_.ways; ++w) {
    if (valid_[base + w] && tags_[base + w] == line) {
      age_[base + w] = clock_;
      return;
    }
    const std::uint64_t a = valid_[base + w] ? age_[base + w] : 0;
    if (a < lru_age) {
      lru_age = a;
      lru_way = w;
    }
  }
  tags_[base + lru_way] = line;
  age_[base + lru_way] = clock_;
  valid_[base + lru_way] = 1;
}

bool CacheLevel::probe(std::uint64_t addr) const {
  const std::uint64_t line = addr >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line % num_sets_);
  const std::size_t base = set * cfg_.ways;
  for (std::size_t w = 0; w < cfg_.ways; ++w) {
    if (valid_[base + w] && tags_[base + w] == line) return true;
  }
  return false;
}

CacheHierarchy::CacheHierarchy(std::vector<CacheConfig> levels) {
  levels_.reserve(levels.size());
  for (const CacheConfig& cfg : levels) levels_.emplace_back(cfg);
}

CacheHierarchy CacheHierarchy::xeon_gold_6130() {
  return CacheHierarchy({
      {.size_bytes = 32u << 10, .line_bytes = 64, .ways = 8},   // L1D
      {.size_bytes = 1u << 20, .line_bytes = 64, .ways = 16},   // L2
      {.size_bytes = 22u << 20, .line_bytes = 64, .ways = 11},  // L3
  });
}

CacheHierarchy CacheHierarchy::tiny() {
  return CacheHierarchy({
      {.size_bytes = 1u << 10, .line_bytes = 64, .ways = 2},
      {.size_bytes = 8u << 10, .line_bytes = 64, .ways = 4},
      {.size_bytes = 64u << 10, .line_bytes = 64, .ways = 8},
  });
}

std::size_t CacheHierarchy::access(std::uint64_t addr) {
  ++total_accesses_;
  std::size_t hit_level = levels_.size();
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].access(addr)) {
      hit_level = i;
      break;
    }
  }
  if (prefetch_ && hit_level > 0 && levels_.size() > 1) {
    // Streaming next-line fill into L2 and below (only if not resident —
    // real prefetchers filter redundant fills).
    const std::uint64_t next =
        addr + levels_[0].config().line_bytes;
    if (!levels_[1].probe(next)) {
      ++prefetch_installs_;
      for (std::size_t i = 1; i < levels_.size(); ++i) {
        levels_[i].install(next);
      }
    }
  }
  return hit_level;
}

void CacheHierarchy::reset_counters() {
  total_accesses_ = 0;
  prefetch_installs_ = 0;
  for (CacheLevel& level : levels_) level.reset_counters();
}

void CacheHierarchy::export_metrics(telemetry::MetricsRegistry& reg,
                                    const std::string& prefix) const {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const CacheLevel& lvl = levels_[i];
    const std::string p = prefix + ".l" + std::to_string(i + 1);
    reg.counter(p + ".accesses").add(0, lvl.accesses());
    reg.counter(p + ".misses").add(0, lvl.misses());
    reg.set_gauge(p + ".miss_rate", lvl.miss_rate());
  }
  reg.counter(prefix + ".accesses").add(0, total_accesses_);
  reg.counter(prefix + ".memory_accesses").add(0, memory_accesses());
  reg.counter(prefix + ".prefetch_installs").add(0, prefetch_installs_);
}

}  // namespace ihtl
