// Set-associative LRU cache model and a 3-level hierarchy.
//
// The paper measures L2/L3 misses with PAPI on a Xeon Gold 6130 (32 KB L1,
// 1 MB L2, 22 MB shared L3). Hardware counters are unavailable here, so the
// benches replay the exact memory-access streams of the SpMV kernels through
// this simulator. The model is deliberately simple — physical addresses,
// true LRU, allocate-on-miss at every level, no prefetcher — because the
// effect being reproduced (hub pulls thrash the LLC; hub pushes hit a small
// resident buffer) is a capacity/reuse effect, not a policy subtlety.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace ihtl {

namespace telemetry {
class MetricsRegistry;
}  // namespace telemetry

/// Geometry of one cache level.
struct CacheConfig {
  std::size_t size_bytes = 1u << 20;
  std::size_t line_bytes = 64;
  std::size_t ways = 8;

  std::size_t num_sets() const { return size_bytes / (line_bytes * ways); }
};

/// One set-associative LRU cache level.
class CacheLevel {
 public:
  explicit CacheLevel(const CacheConfig& cfg);

  /// Accesses `addr`; allocates the line on miss. Returns true on hit.
  bool access(std::uint64_t addr);

  /// Installs `addr`'s line without touching the hit/miss counters —
  /// models a hardware prefetch fill.
  void install(std::uint64_t addr);

  /// True if `addr`'s line is currently resident (no LRU update).
  bool probe(std::uint64_t addr) const;

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t misses() const { return misses_; }
  double miss_rate() const {
    return accesses_ ? static_cast<double>(misses_) / accesses_ : 0.0;
  }
  void reset_counters() { accesses_ = misses_ = 0; }
  const CacheConfig& config() const { return cfg_; }

 private:
  CacheConfig cfg_;
  std::size_t num_sets_;
  std::size_t line_shift_;
  // tags_[set*ways + way]; age_ is a per-set LRU stamp.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> age_;
  std::vector<std::uint8_t> valid_;
  std::uint64_t clock_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
};

/// L1 -> L2 -> L3 lookup chain; a miss at level k probes level k+1.
class CacheHierarchy {
 public:
  /// Defaults mirror the paper's machine: 32 KB L1, 1 MB L2, 22 MB L3.
  static CacheHierarchy xeon_gold_6130();
  /// A scaled-down hierarchy for fast unit tests and small graphs.
  static CacheHierarchy tiny();

  explicit CacheHierarchy(std::vector<CacheConfig> levels);

  /// Enables a next-line streaming prefetcher: when an access misses L1,
  /// the successor line is installed into L2 and below (not L1). Models
  /// the stream prefetchers that make the paper's sequential access types
  /// ("assisted by prefetching", Section 4.3) nearly free. Default off.
  void set_next_line_prefetch(bool enabled) { prefetch_ = enabled; }
  std::uint64_t prefetch_installs() const { return prefetch_installs_; }

  /// Accesses one byte address; returns the level index that hit
  /// (0 = L1, ...), or levels() if the access went to memory.
  std::size_t access(std::uint64_t addr);

  std::size_t levels() const { return levels_.size(); }
  const CacheLevel& level(std::size_t i) const { return levels_[i]; }
  std::uint64_t total_accesses() const { return total_accesses_; }
  /// Misses at the last level == accesses that reached main memory.
  std::uint64_t memory_accesses() const {
    return levels_.empty() ? total_accesses_ : levels_.back().misses();
  }
  void reset_counters();

  /// Adds the hierarchy's counters into `reg`: per level
  /// `<prefix>.l<k>.accesses/.misses` plus `<prefix>.accesses`,
  /// `<prefix>.memory_accesses`, `<prefix>.prefetch_installs`, and
  /// per-level `<prefix>.l<k>.miss_rate` gauges. Counters accumulate —
  /// snapshot into a fresh/cleared registry or reset_counters() between
  /// exports.
  void export_metrics(telemetry::MetricsRegistry& reg,
                      const std::string& prefix = "cachesim") const;

 private:
  std::vector<CacheLevel> levels_;
  std::uint64_t total_accesses_ = 0;
  bool prefetch_ = false;
  std::uint64_t prefetch_installs_ = 0;
};

}  // namespace ihtl
