// Wall-clock timing helpers used by the benches and the iHTL execution
// breakdown instrumentation (Table 5).
#pragma once

#include <chrono>
#include <cstdint>

namespace ihtl {

/// Monotonic stopwatch; `elapsed_*` reads without stopping.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ihtl
