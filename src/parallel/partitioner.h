// Vertex- and edge-balanced range partitioning.
//
// GraphGrind-style pull traversal partitions the destination range so each
// part carries roughly the same number of edges (Section 4.1, [35]); the
// sparse-block pull in iHTL reuses the same partitioner. Vertex-balanced
// splits are the trivial equal-count fallback.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ihtl {

/// Half-open index range [begin, end).
struct Range {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t size() const { return end - begin; }
  bool operator==(const Range&) const = default;
};

/// Splits [0, n) into `parts` ranges of near-equal length.
std::vector<Range> partition_by_vertex(std::uint64_t n, std::size_t parts);

/// Splits the vertex range [0, offsets.size()-1) into `parts` ranges such
/// that each range covers a near-equal share of edges. `offsets` is a CSR/CSC
/// offset array (size n+1, nondecreasing). Boundaries are found by binary
/// search on the offset array, so cost is O(parts * log n).
std::vector<Range> partition_by_edge(std::span<const std::uint64_t> offsets,
                                     std::size_t parts);

}  // namespace ihtl
