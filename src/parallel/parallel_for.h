// Chunk-self-scheduling parallel_for with work stealing between workers.
//
// Each worker owns a contiguous slice of the iteration space and claims
// chunks from it with a private atomic cursor; when its slice drains it
// steals chunks from the most-loaded victim's cursor. This mirrors the
// work-stealing scheduling of graph partitions described in the paper
// (Section 4.1) while keeping per-chunk ordering deterministic enough for
// fixed-thread-count reproducibility.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "parallel/thread_pool.h"
#include "telemetry/trace.h"

namespace ihtl {

/// Scheduling knobs for parallel_for.
struct ForOptions {
  /// Iterations claimed per scheduling step. 0 = auto (range/threads/8,
  /// clamped to [1, 4096]).
  std::size_t grain = 0;
};

namespace detail {

inline std::size_t auto_grain(std::size_t range, std::size_t threads) {
  std::size_t g = range / (threads * 8 + 1);
  if (g < 1) g = 1;
  if (g > 4096) g = 4096;
  return g;
}

/// Per-worker claimable slice. Thieves and the owner both claim via
/// fetch_add on `next`; claims past `end` are discarded.
struct alignas(64) Slice {
  std::atomic<std::uint64_t> next{0};
  std::uint64_t end = 0;
};

}  // namespace detail

/// Runs `body(i, tid)` for every i in [begin, end) across the pool.
///
/// `body` must be safe to run concurrently for distinct i. Iterations are
/// grouped into grain-sized chunks; a chunk runs on exactly one thread.
template <typename Body>
void parallel_for(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  const Body& body, ForOptions opt = {}) {
  const std::uint64_t range = end > begin ? end - begin : 0;
  if (range == 0) return;
  const std::size_t nt = pool.size();
  // Timeline hook: one complete event per claimed chunk (category "chunk"
  // for own-slice claims, "steal" for stolen ones). A single relaxed load
  // when tracing is off; the name is interned once per loop, outside the
  // claim path.
  telemetry::TraceBuffer* const trace = telemetry::TraceBuffer::active();
  const std::uint32_t trace_name = trace ? trace->intern("parallel_for") : 0;
  if (nt == 1 || range == 1) {
    const std::uint64_t t0 = trace ? trace->now_ns() : 0;
    for (std::uint64_t i = begin; i < end; ++i) body(i, 0);
    pool.worker_stats(0).chunks.fetch_add(1, std::memory_order_relaxed);
    if (trace) {
      trace->record(telemetry::TraceEventKind::chunk, trace_name, t0,
                    trace->now_ns() - t0, static_cast<std::uint32_t>(begin),
                    static_cast<std::uint32_t>(end));
    }
    return;
  }
  const std::uint64_t grain =
      opt.grain ? opt.grain : detail::auto_grain(range, nt);

  std::vector<detail::Slice> slices(nt);
  const std::uint64_t per = range / nt;
  const std::uint64_t extra = range % nt;
  std::uint64_t cursor = begin;
  for (std::size_t t = 0; t < nt; ++t) {
    const std::uint64_t len = per + (t < extra ? 1 : 0);
    slices[t].next.store(cursor, std::memory_order_relaxed);
    slices[t].end = cursor + len;
    cursor += len;
  }

  pool.run([&](std::size_t tid) {
    // Drain own slice first, then steal from the victim with the most work.
    // Chunk claims are tallied locally and flushed once per worker per loop
    // so the telemetry costs two relaxed fetch_adds, not one per chunk.
    std::uint64_t own_chunks = 0, stolen_chunks = 0;
    auto drain = [&](detail::Slice& s, std::uint64_t& tally,
                     telemetry::TraceEventKind kind) {
      for (;;) {
        const std::uint64_t lo =
            s.next.fetch_add(grain, std::memory_order_relaxed);
        if (lo >= s.end) return;
        ++tally;
        const std::uint64_t hi = lo + grain < s.end ? lo + grain : s.end;
        const std::uint64_t t0 = trace ? trace->now_ns() : 0;
        for (std::uint64_t i = lo; i < hi; ++i) body(i, tid);
        if (trace) {
          trace->record(kind, trace_name, t0, trace->now_ns() - t0,
                        static_cast<std::uint32_t>(lo),
                        static_cast<std::uint32_t>(hi));
        }
      }
    };
    drain(slices[tid], own_chunks, telemetry::TraceEventKind::chunk);
    for (;;) {
      std::size_t victim = nt;
      std::uint64_t best_left = 0;
      for (std::size_t t = 0; t < nt; ++t) {
        if (t == tid) continue;
        const std::uint64_t nx = slices[t].next.load(std::memory_order_relaxed);
        const std::uint64_t left = nx < slices[t].end ? slices[t].end - nx : 0;
        if (left > best_left) {
          best_left = left;
          victim = t;
        }
      }
      if (victim == nt) break;
      drain(slices[victim], stolen_chunks, telemetry::TraceEventKind::steal);
    }
    WorkerStats& ws = pool.worker_stats(tid);
    if (own_chunks) {
      ws.chunks.fetch_add(own_chunks, std::memory_order_relaxed);
    }
    if (stolen_chunks) {
      ws.steals.fetch_add(stolen_chunks, std::memory_order_relaxed);
    }
  });
}

/// Runs `body(lo, hi, tid)` over grain-aligned chunks instead of single
/// indices; useful when the body wants to hoist per-chunk state.
template <typename Body>
void parallel_for_chunks(ThreadPool& pool, std::uint64_t begin,
                         std::uint64_t end, const Body& body,
                         ForOptions opt = {}) {
  const std::uint64_t range = end > begin ? end - begin : 0;
  if (range == 0) return;
  const std::size_t nt = pool.size();
  telemetry::TraceBuffer* const trace = telemetry::TraceBuffer::active();
  const std::uint32_t trace_name =
      trace ? trace->intern("parallel_for_chunks") : 0;
  if (nt == 1) {
    const std::uint64_t t0 = trace ? trace->now_ns() : 0;
    body(begin, end, std::size_t{0});
    pool.worker_stats(0).chunks.fetch_add(1, std::memory_order_relaxed);
    if (trace) {
      trace->record(telemetry::TraceEventKind::chunk, trace_name, t0,
                    trace->now_ns() - t0, static_cast<std::uint32_t>(begin),
                    static_cast<std::uint32_t>(end));
    }
    return;
  }
  const std::uint64_t grain =
      opt.grain ? opt.grain : detail::auto_grain(range, nt);
  std::atomic<std::uint64_t> next{begin};
  pool.run([&](std::size_t tid) {
    std::uint64_t claimed = 0;
    for (;;) {
      const std::uint64_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      ++claimed;
      const std::uint64_t hi = lo + grain < end ? lo + grain : end;
      const std::uint64_t t0 = trace ? trace->now_ns() : 0;
      body(lo, hi, tid);
      if (trace) {
        trace->record(telemetry::TraceEventKind::chunk, trace_name, t0,
                      trace->now_ns() - t0, static_cast<std::uint32_t>(lo),
                      static_cast<std::uint32_t>(hi));
      }
    }
    if (claimed) {
      pool.worker_stats(tid).chunks.fetch_add(claimed,
                                              std::memory_order_relaxed);
    }
  });
}

/// Parallel reduction: `body(i, tid)` produces a T, combined with `combine`
/// in fixed thread order so results are reproducible for a fixed pool size.
template <typename T, typename Body, typename Combine>
T parallel_reduce(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  T identity, const Body& body, const Combine& combine,
                  ForOptions opt = {}) {
  const std::size_t nt = pool.size();
  std::vector<T> partial(nt, identity);
  parallel_for(
      pool, begin, end,
      [&](std::uint64_t i, std::size_t tid) {
        partial[tid] = combine(partial[tid], body(i, tid));
      },
      opt);
  T total = identity;
  for (std::size_t t = 0; t < nt; ++t) total = combine(total, partial[t]);
  return total;
}

}  // namespace ihtl
