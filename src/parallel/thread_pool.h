// Master-worker thread pool used by every parallel kernel in the library.
//
// The paper's implementation uses a master-worker model with work stealing
// over graph partitions (Section 4.1). This pool reproduces that structure:
// a fixed set of persistent workers parked on a condition variable; the
// master publishes a job (a callable run once per worker) and waits for all
// workers to finish. Range scheduling with stealing lives in parallel_for.h.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ihtl {

/// Persistent master-worker thread pool.
///
/// `run(fn)` invokes `fn(tid)` on every worker thread (tid in [0, size())),
/// including the calling thread as tid 0, and returns when all invocations
/// complete. The pool is reusable across jobs; jobs must not be nested.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers, including the master thread.
  std::size_t size() const { return num_threads_; }

  /// Runs `fn(tid)` on all `size()` workers and blocks until all return.
  void run(const std::function<void(std::size_t)>& fn);

  /// Process-wide default pool, sized to hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop(std::size_t tid);

  std::size_t num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::size_t remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace ihtl
