// Master-worker thread pool used by every parallel kernel in the library.
//
// The paper's implementation uses a master-worker model with work stealing
// over graph partitions (Section 4.1). This pool reproduces that structure:
// a fixed set of persistent workers parked on a condition variable; the
// master publishes a job (a callable run once per worker) and waits for all
// workers to finish. Range scheduling with stealing lives in parallel_for.h.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ihtl {

namespace telemetry {
class MetricsRegistry;
}  // namespace telemetry

/// Per-worker scheduling statistics, updated by parallel_for with relaxed
/// atomics (one line per worker; one fetch_add per worker per loop, not per
/// chunk). `chunks` counts chunks claimed from the worker's own slice,
/// `steals` chunks claimed from other workers' slices — their spread across
/// workers is the first direct view of load imbalance in this codebase.
struct alignas(64) WorkerStats {
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> steals{0};
};

/// Persistent master-worker thread pool.
///
/// `run(fn)` invokes `fn(tid)` on every worker thread (tid in [0, size())),
/// including the calling thread as tid 0, and returns when all invocations
/// complete. The pool is reusable across jobs; jobs must not be nested.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers, including the master thread.
  std::size_t size() const { return num_threads_; }

  /// Runs `fn(tid)` on all `size()` workers and blocks until all return.
  /// After shutdown() the same contract holds with the worker threads gone:
  /// the calling thread executes fn(0) .. fn(size()-1) serially.
  void run(const std::function<void(std::size_t)>& fn);

  /// Drains and joins the worker threads; idempotent and safe to call while
  /// the pool is still referenced by long-lived engines. run() keeps
  /// working afterwards (serial inline execution with the same tid range),
  /// so an owner can order "stop parallelism" strictly before the buffers
  /// the workers might touch are freed — the destructor ordering hazard of
  /// a long-lived object owning both a pool and IhtlEngine state.
  void shutdown();

  /// Process-wide default pool, sized to hardware concurrency.
  static ThreadPool& global();

  // --- scheduling telemetry ----------------------------------------------
  WorkerStats& worker_stats(std::size_t tid) { return stats_[tid]; }
  const WorkerStats& worker_stats(std::size_t tid) const { return stats_[tid]; }
  /// Jobs dispatched via run() since construction (or reset_stats()).
  std::uint64_t jobs_run() const {
    return jobs_.load(std::memory_order_relaxed);
  }
  /// Zeroes the job/chunk/steal counters.
  void reset_stats();
  /// Adds the pool's lifetime totals into `reg` as counters
  /// `<prefix>.jobs/.chunks/.steals` plus per-worker
  /// `<prefix>.worker<k>.chunks/.steals`, and gauges `<prefix>.threads` and
  /// `<prefix>.imbalance` (max worker chunk count over the mean; 1.0 =
  /// perfectly balanced). Counters accumulate — snapshot into a fresh or
  /// cleared registry, or call reset_stats() between exports.
  void export_metrics(telemetry::MetricsRegistry& reg,
                      const std::string& prefix = "pool") const;

 private:
  void worker_loop(std::size_t tid);

  std::size_t num_threads_;
  std::vector<std::thread> threads_;
  std::unique_ptr<WorkerStats[]> stats_;
  std::atomic<std::uint64_t> jobs_{0};

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::size_t remaining_ = 0;
  bool shutdown_ = false;
  /// Set for the duration of run(); only read under IHTL_CHECK_INVARIANTS
  /// to reject nested jobs (declared unconditionally so the ABI does not
  /// depend on the invariant flag).
  std::atomic<bool> in_run_{false};
};

}  // namespace ihtl
