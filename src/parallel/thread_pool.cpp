#include "parallel/thread_pool.h"

#include <algorithm>

#include "check/invariants.h"
#include "telemetry/metrics.h"
#include "telemetry/perf_counters.h"
#include "telemetry/trace.h"

namespace ihtl {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads_ = num_threads;
  stats_ = std::make_unique<WorkerStats[]>(num_threads_);
  threads_.reserve(num_threads_ - 1);
  for (std::size_t t = 1; t < num_threads_; ++t) {
    threads_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& th : threads_) th.join();
  threads_.clear();
}

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  IHTL_INVARIANT(!in_run_.exchange(true, std::memory_order_acquire),
                 "nested ThreadPool::run (job launched from inside a job)");
  IHTL_IF_INVARIANTS(struct RunGuard {
    std::atomic<bool>& flag;
    ~RunGuard() { flag.store(false, std::memory_order_release); }
  } guard{in_run_};)
  jobs_.fetch_add(1, std::memory_order_relaxed);
  // When a perf::PhaseScope is armed, every worker brackets the job with a
  // per-thread HW-counter snapshot so the phase accumulates deltas from ALL
  // workers, not just the span-recording thread. One branch when disabled.
  std::function<void(std::size_t)> wrapped;
  const std::function<void(std::size_t)>* job = &fn;
  if (telemetry::perf::capture_armed()) {
    wrapped = [&fn](std::size_t tid) {
      const telemetry::PerfCounterValues before =
          telemetry::perf::snapshot_this_thread();
      fn(tid);
      telemetry::perf::accumulate_job_delta(
          telemetry::perf::snapshot_this_thread().delta_since(before));
    };
    job = &wrapped;
  }
  // When a request flow is active (the serve dispatch thread sets it around
  // each batch compute) and a trace buffer is recording, every worker stamps
  // a flow_step before touching the job, so the Chrome trace draws the
  // request's arrows into the shard/chunk slices of every thread that did
  // work for it. Two relaxed loads when idle.
  std::function<void(std::size_t)> flow_wrapped;
  if (const std::uint64_t flow_id = telemetry::active_flow();
      flow_id != 0 && telemetry::TraceBuffer::active() != nullptr) {
    const std::function<void(std::size_t)>* inner = job;
    flow_wrapped = [inner, flow_id](std::size_t tid) {
      telemetry::flow_mark(telemetry::TraceEventKind::flow_step, flow_id);
      (*inner)(tid);
    };
    job = &flow_wrapped;
  }
  // Single-worker pools, and pools whose workers were joined by shutdown(),
  // execute the job inline on the caller — every tid still runs exactly
  // once, so parallel_for / engine code is oblivious to the drain.
  if (num_threads_ == 1 || threads_.empty()) {
    for (std::size_t t = 0; t < num_threads_; ++t) (*job)(t);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    remaining_ = num_threads_ - 1;
    ++epoch_;
  }
  work_ready_.notify_all();
  (*job)(0);  // the master participates as tid 0
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(std::size_t tid) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    (*job)(tid);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) work_done_.notify_one();
    }
  }
}

void ThreadPool::reset_stats() {
  jobs_.store(0, std::memory_order_relaxed);
  for (std::size_t t = 0; t < num_threads_; ++t) {
    stats_[t].chunks.store(0, std::memory_order_relaxed);
    stats_[t].steals.store(0, std::memory_order_relaxed);
  }
}

void ThreadPool::export_metrics(telemetry::MetricsRegistry& reg,
                                const std::string& prefix) const {
  std::uint64_t total_chunks = 0, total_steals = 0, max_chunks = 0;
  for (std::size_t t = 0; t < num_threads_; ++t) {
    const std::uint64_t c = stats_[t].chunks.load(std::memory_order_relaxed);
    const std::uint64_t s = stats_[t].steals.load(std::memory_order_relaxed);
    total_chunks += c;
    total_steals += s;
    max_chunks = std::max(max_chunks, c + s);
    const std::string w = prefix + ".worker" + std::to_string(t);
    reg.counter(w + ".chunks").add(0, c);
    reg.counter(w + ".steals").add(0, s);
  }
  reg.counter(prefix + ".jobs").add(0, jobs_run());
  reg.counter(prefix + ".chunks").add(0, total_chunks);
  reg.counter(prefix + ".steals").add(0, total_steals);
  reg.set_gauge(prefix + ".threads", static_cast<double>(num_threads_));
  // Zero claimed work (e.g. a profiling repetition that only ran serial
  // phases) is perfectly balanced by definition: report exactly 1.0 rather
  // than risking 0/0 -> NaN poisoning report diffs downstream.
  const std::uint64_t total_work = total_chunks + total_steals;
  double imbalance = 1.0;
  if (total_work > 0) {
    const double mean =
        static_cast<double>(total_work) / static_cast<double>(num_threads_);
    imbalance = static_cast<double>(max_chunks) / mean;
  }
  reg.set_gauge(prefix + ".imbalance", imbalance);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ihtl
