#include "parallel/thread_pool.h"

namespace ihtl {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads_ = num_threads;
  threads_.reserve(num_threads_ - 1);
  for (std::size_t t = 1; t < num_threads_; ++t) {
    threads_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& th : threads_) th.join();
}

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  if (num_threads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    remaining_ = num_threads_ - 1;
    ++epoch_;
  }
  work_ready_.notify_all();
  fn(0);  // the master participates as tid 0
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(std::size_t tid) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    (*job)(tid);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) work_done_.notify_one();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ihtl
