#include "parallel/partitioner.h"

#include <algorithm>

namespace ihtl {

std::vector<Range> partition_by_vertex(std::uint64_t n, std::size_t parts) {
  if (parts == 0) parts = 1;
  std::vector<Range> out;
  out.reserve(parts);
  const std::uint64_t per = n / parts;
  const std::uint64_t extra = n % parts;
  std::uint64_t cursor = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::uint64_t len = per + (p < extra ? 1 : 0);
    out.push_back({cursor, cursor + len});
    cursor += len;
  }
  return out;
}

std::vector<Range> partition_by_edge(std::span<const std::uint64_t> offsets,
                                     std::size_t parts) {
  if (parts == 0) parts = 1;
  if (offsets.size() <= 1) {
    // No vertices (an empty span has no valid begin()+1); every part is empty.
    return std::vector<Range>(parts, Range{0, 0});
  }
  const std::uint64_t n = offsets.size() - 1;
  const std::uint64_t m = offsets.back();
  std::vector<Range> out;
  out.reserve(parts);
  std::uint64_t begin = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::uint64_t target = m * (p + 1) / parts;
    // First vertex whose cumulative edge count reaches the target.
    const auto it = std::lower_bound(offsets.begin() + begin + 1,
                                     offsets.begin() + n + 1, target);
    std::uint64_t end = p + 1 == parts
                            ? n
                            : static_cast<std::uint64_t>(it - offsets.begin());
    if (end < begin) end = begin;
    if (end > n) end = n;
    out.push_back({begin, end});
    begin = end;
  }
  out.back().end = n;
  return out;
}

}  // namespace ihtl
