// Cache-line padded per-thread storage.
//
// iHTL's flipped-block push writes into per-thread buffers that are later
// merged (Algorithm 3). Keeping each thread's buffer on its own cache lines
// avoids false sharing during the push phase.
#pragma once

#include <cstddef>
#include <vector>

namespace ihtl {

/// `threads` independent arrays of `len` Ts, each aligned to 64 bytes.
template <typename T>
class PerThread {
 public:
  PerThread() = default;
  PerThread(std::size_t threads, std::size_t len, const T& init = T{})
      : len_(len), stride_((len * sizeof(T) + 63) / 64 * 64 / sizeof(T)) {
    if (stride_ == 0) stride_ = 64 / sizeof(T);
    data_.assign(threads * stride_, init);
  }

  T* get(std::size_t tid) { return data_.data() + tid * stride_; }
  const T* get(std::size_t tid) const { return data_.data() + tid * stride_; }
  std::size_t length() const { return len_; }
  std::size_t threads() const { return stride_ ? data_.size() / stride_ : 0; }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  std::size_t len_ = 0;
  std::size_t stride_ = 0;
  std::vector<T> data_;
};

}  // namespace ihtl
