// Per-thread touch bitmaps (threads x slots).
//
// The iHTL engine tracks which (thread, flipped-block) pairs the push phase
// actually wrote so that buffer reset and merge can skip everything else
// (O(touched) instead of O(threads x blocks' hubs)). Each thread owns one
// cache-line-padded row of bits: setting/clearing its own row needs no
// atomics, and rows never share a line, so the push hot path pays one plain
// word OR per chunk. Cross-row reads (the merge phase scanning every
// thread's bit for a block) are safe because the thread-pool join between
// push and merge orders them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ihtl {

/// `threads` independent bitmaps of `slots` bits, one 64-byte-aligned row
/// per thread. Writers must only touch their own row; readers must be
/// ordered against writers externally (e.g. by a pool barrier).
class TouchMatrix {
 public:
  TouchMatrix() = default;
  TouchMatrix(std::size_t threads, std::size_t slots)
      : slots_(slots),
        // Round the row up to whole cache lines so rows never share one.
        words_per_row_(((slots + 63) / 64 + 7) / 8 * 8),
        words_(threads * words_per_row_, 0) {}

  std::size_t threads() const {
    return words_per_row_ ? words_.size() / words_per_row_ : 0;
  }
  std::size_t slots() const { return slots_; }

  /// Marks (tid, slot). Row-private: call only from thread `tid`'s work.
  void set(std::size_t tid, std::size_t slot) {
    row(tid)[slot / 64] |= std::uint64_t{1} << (slot % 64);
  }

  bool test(std::size_t tid, std::size_t slot) const {
    return (row(tid)[slot / 64] >> (slot % 64)) & 1;
  }

  /// Clears thread `tid`'s whole row. Row-private, like set().
  void clear_row(std::size_t tid) {
    std::uint64_t* r = row(tid);
    for (std::size_t w = 0; w < words_per_row_; ++w) r[w] = 0;
  }

  /// Number of set bits in thread `tid`'s row.
  std::size_t count_row(std::size_t tid) const {
    std::size_t n = 0;
    const std::uint64_t* r = row(tid);
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t v = r[w];
      while (v) {
        v &= v - 1;
        ++n;
      }
    }
    return n;
  }

 private:
  std::uint64_t* row(std::size_t tid) {
    return words_.data() + tid * words_per_row_;
  }
  const std::uint64_t* row(std::size_t tid) const {
    return words_.data() + tid * words_per_row_;
  }

  std::size_t slots_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ihtl
